type compensation = Table_approx | Exact_iterative

type result = {
  chosen : Vbuffer.t list;
  spilled : Vbuffer.t list;
  on_chip : Metric.Item_set.t;
  predicted_latency : float;
  capacity_blocks : int;
  used_blocks : int;
}

(* --- compensation memos ----------------------------------------------

   Per-row state for the Table_approx gain: the affected nodes split
   into column-independent ones (both predicate evaluations are
   constants) and dependent ones, which read [pbuf_table] bits of
   earlier DP rows at the source column.  Gains are memoized at two
   granularities:

   - per dependent *node*, keyed on the packed bits of just the earlier
     rows that node's queries can reach (widths are tiny — a node
     queries its weight, its input features and its output), and
   - per *row*, keyed on the packed bits of every earlier row the whole
     row can reach, so a repeated bit pattern costs one lookup.

   Rows too wide for a single-int row key fall back to per-column
   accumulation through the node memos — still cheap, because each
   node's key stays narrow even when the row's union of dependencies is
   wide.  Every memoized value is a pure function of its key bits (the
   unmemoized fold reads identical state and produces identical
   floats), which is what makes reuse — across columns, DP rows and
   whole allocator re-runs — bit-exact. *)

let max_key_bits = Sys.int_size - 2
let row_direct_bits = 12
let node_direct_bits = 8

type node_memo =
  | Node_const
  | Node_direct of { p1 : float array; p2 : float array }  (* NaN = empty *)
  | Node_hash of (int, float * float) Hashtbl.t
  | Node_wide

type row_tbl =
  | Row_const
  | Row_direct of float array                              (* NaN = empty *)
  | Row_hash of (int, float) Hashtbl.t
  | Row_wide

(* The cacheable half of a row's compensation state.  [earlier_members]
   identifies the earlier-owner rows *by member list, in discovery
   order*: a warm workspace may only reuse the entry when a fresh
   discovery finds structurally equal member lists in the same order,
   because then every memo bit position denotes the same allocation
   question and every cached float is still the value the cold fold
   would compute.  Absolute row indices are per-run and recomputed. *)
type row_entry = {
  earlier_members : Metric.item list array;
  node_widths : int array;
  dep_flags : bool array;
  const_without : float array;
  const_with : float array;
  mutable const_total : float;
  node_memos : node_memo array;
  row_tbl : row_tbl;
}

(* Scratch state shared across allocator calls (the splitting loop
   re-runs the allocator up to 16 times over near-identical buffer
   sets): per-member-list memos of affected nodes, static gains and the
   full compensation row state, plus the DP arrays, which are zeroed
   rather than reallocated.  A workspace is only valid against the
   metric it first ran with. *)
type workspace = {
  affected_memo : (Metric.item list, int array) Hashtbl.t;
  static_gain_memo : (Metric.item list, float) Hashtbl.t;
  row_cache : (Metric.item list, row_entry) Hashtbl.t;
  mutable dp_prev : float array;
  mutable dp_curr : float array;
  mutable dp_rows : bool array array;
  mutable gain_buf : float array;
  mutable key_buf : int array;
}

let workspace () =
  { affected_memo = Hashtbl.create 64;
    static_gain_memo = Hashtbl.create 64;
    row_cache = Hashtbl.create 64;
    dp_prev = [||];
    dp_curr = [||];
    dp_rows = [||];
    gain_buf = [||];
    key_buf = [||] }

let block_bytes = Fpga.Resource.uram_bytes

let blocks_of_bytes bytes = (bytes + block_bytes - 1) / block_bytes

let items_of_vbufs vbufs =
  List.concat_map (fun vb -> vb.Vbuffer.members) vbufs

let set_of_vbufs vbufs =
  Metric.Item_set.of_list (items_of_vbufs vbufs)

let finish metric ~capacity_blocks vbufs chosen_ids =
  let chosen_tbl = Hashtbl.create (2 * List.length chosen_ids + 1) in
  List.iter (fun id -> Hashtbl.replace chosen_tbl id ()) chosen_ids;
  let chosen, spilled =
    List.partition (fun vb -> Hashtbl.mem chosen_tbl vb.Vbuffer.vbuf_id) vbufs
  in
  let on_chip = set_of_vbufs chosen in
  { chosen;
    spilled;
    on_chip;
    predicted_latency = Metric.total_latency metric ~on_chip;
    capacity_blocks;
    used_blocks =
      List.fold_left
        (fun acc vb -> acc + blocks_of_bytes vb.Vbuffer.size_bytes)
        0 chosen }

(* Nodes whose latency any member of the buffer influences. *)
let affected_nodes_of_vbuf ws metric vb =
  let members = vb.Vbuffer.members in
  match Hashtbl.find_opt ws.affected_memo members with
  | Some nodes -> nodes
  | None ->
    let nodes =
      List.concat_map (Metric.affected_nodes metric) members
      |> List.sort_uniq compare |> Array.of_list
    in
    Hashtbl.add ws.affected_memo members nodes;
    nodes

let static_gain_of_vbuf ws metric vb =
  let members = vb.Vbuffer.members in
  match Hashtbl.find_opt ws.static_gain_memo members with
  | Some gain -> gain
  | None ->
    let gain =
      Metric.marginal_gain_many metric ~on_chip:Metric.Item_set.empty members
    in
    Hashtbl.add ws.static_gain_memo members gain;
    gain

(* How one DP row supplies its gains: a column-independent constant, or
   a filler that writes the gain for every source column 0..cols-1 into
   the scratch buffer (reading earlier rows' placement bits). *)
type row_gain =
  | Const_gain of float
  | Fill_gains of
      (cols:int -> pbuf_table:bool array array -> gains:float array -> unit)

(* One 0/1-knapsack DP over virtual buffers.  [row_gain] supplies each
   row's gains whole-row-at-a-time (allowing the paper's table-based
   compensation to batch its memo lookups); the memo of placement bits
   is exposed to fillers through [pbuf_table].  The DP arrays come from
   the workspace and are cleared, not reallocated, on reuse. *)
let knapsack_dp ws ~capacity ~sizes ~row_gain =
  let n = Array.length sizes in
  if Array.length ws.dp_prev <= capacity then begin
    ws.dp_prev <- Array.make (capacity + 1) 0.;
    ws.dp_curr <- Array.make (capacity + 1) 0.
  end
  else begin
    Array.fill ws.dp_prev 0 (capacity + 1) 0.;
    Array.fill ws.dp_curr 0 (capacity + 1) 0.
  end;
  if
    Array.length ws.dp_rows <= n
    || (n >= 0 && Array.length ws.dp_rows.(0) <= capacity)
  then ws.dp_rows <- Array.make_matrix (n + 1) (capacity + 1) false
  else
    for i = 1 to n do
      Array.fill ws.dp_rows.(i) 0 (capacity + 1) false
    done;
  if Array.length ws.gain_buf <= capacity then
    ws.gain_buf <- Array.make (capacity + 1) 0.;
  let prev = ws.dp_prev and curr = ws.dp_curr and pbuf_table = ws.dp_rows in
  for i = 1 to n do
    let s = sizes.(i - 1) in
    if s > capacity then Array.blit prev 0 curr 0 (capacity + 1)
    else begin
      for j = 0 to s - 1 do
        curr.(j) <- prev.(j)
      done;
      match row_gain (i - 1) with
      | Const_gain g ->
        for j = s to capacity do
          let without = prev.(j) in
          let with_gain = prev.(j - s) +. g in
          if with_gain > without then begin
            curr.(j) <- with_gain;
            pbuf_table.(i).(j) <- true
          end
          else curr.(j) <- without
        done
      | Fill_gains fill ->
        let gains = ws.gain_buf in
        fill ~cols:(capacity - s + 1) ~pbuf_table ~gains;
        for j = s to capacity do
          let without = prev.(j) in
          let with_gain = prev.(j - s) +. gains.(j - s) in
          if with_gain > without then begin
            curr.(j) <- with_gain;
            pbuf_table.(i).(j) <- true
          end
          else curr.(j) <- without
        done
    end;
    Array.blit curr 0 prev 0 (capacity + 1)
  done;
  (* Backtrace the memo into the chosen index set. *)
  let rec back i j acc =
    if i = 0 then acc
    else if pbuf_table.(i).(j) then back (i - 1) (j - sizes.(i - 1)) ((i - 1) :: acc)
    else back (i - 1) j acc
  in
  back n capacity []

(* Greedy repair after the DP: while spare capacity remains, pull back any
   spilled buffer whose marginal gain against the chosen set is positive.
   This recovers value the max-structure hides from per-row compensation
   (a term only pays off once its node's larger terms are also pinned). *)
let sweep_up metric ~capacity_blocks result =
  let rec loop result =
    let free = capacity_blocks - result.used_blocks in
    let candidate =
      List.filter_map
        (fun vb ->
          let blocks = blocks_of_bytes vb.Vbuffer.size_bytes in
          if blocks > free then None
          else
            let gain =
              Metric.marginal_gain_many metric ~on_chip:result.on_chip
                vb.Vbuffer.members
            in
            if gain > 1e-15 then Some (gain, vb) else None)
        result.spilled
    in
    match candidate with
    | [] -> result
    | first :: rest ->
      let _, best =
        List.fold_left (fun (bg, bv) (g, v) -> if g > bg then (g, v) else (bg, bv))
          first rest
      in
      let chosen = best :: result.chosen in
      let on_chip =
        List.fold_left
          (fun acc it -> Metric.Item_set.add it acc)
          result.on_chip best.Vbuffer.members
      in
      loop
        { result with
          chosen;
          spilled =
            List.filter (fun vb -> vb.Vbuffer.vbuf_id <> best.Vbuffer.vbuf_id)
              result.spilled;
          on_chip;
          predicted_latency = Metric.total_latency metric ~on_chip;
          used_blocks = result.used_blocks + blocks_of_bytes best.Vbuffer.size_bytes }
  in
  loop result

(* Degraded-mode eviction: the inverse of the knapsack.  When capacity
   shrinks under a live allocation (an SRAM bank drops out), drop chosen
   buffers in increasing benefit-density order — marginal gain against
   the current set per occupied block — until the survivors fit.  The
   runtime's bank-loss handler and the degraded-plan oracle share this
   routine.  Returns the shrunken result plus the evicted buffers in
   eviction order. *)
let evict_to_capacity metric ~capacity_bytes result =
  if capacity_bytes < 0 then
    invalid_arg "Dnnk.evict_to_capacity: negative capacity";
  let capacity_blocks = capacity_bytes / block_bytes in
  let density on_chip vb =
    let without =
      List.fold_left
        (fun acc it -> Metric.Item_set.remove it acc)
        on_chip vb.Vbuffer.members
    in
    let gain = Metric.marginal_gain_many metric ~on_chip:without vb.Vbuffer.members in
    gain /. float_of_int (max 1 (blocks_of_bytes vb.Vbuffer.size_bytes))
  in
  let rec loop result evicted =
    if result.used_blocks <= capacity_blocks then (result, List.rev evicted)
    else
      match result.chosen with
      | [] -> (result, List.rev evicted)
      | first :: rest ->
        let _, worst =
          List.fold_left
            (fun ((bd, _) as best) vb ->
              let d = density result.on_chip vb in
              if d < bd then (d, vb) else best)
            (density result.on_chip first, first)
            rest
        in
        let on_chip =
          List.fold_left
            (fun acc it -> Metric.Item_set.remove it acc)
            result.on_chip worst.Vbuffer.members
        in
        loop
          { result with
            chosen =
              List.filter
                (fun vb -> vb.Vbuffer.vbuf_id <> worst.Vbuffer.vbuf_id)
                result.chosen;
            spilled = worst :: result.spilled;
            on_chip;
            predicted_latency = Metric.total_latency metric ~on_chip;
            used_blocks = result.used_blocks - blocks_of_bytes worst.Vbuffer.size_bytes }
          (worst :: evicted)
  in
  let result, evicted = loop result [] in
  ({ result with capacity_blocks }, evicted)

(* Split a work list into at most [k] contiguous chunks for the pool. *)
let chunks k xs =
  let len = List.length xs in
  if len = 0 then []
  else begin
    let per = (len + k - 1) / k in
    let rec take n acc = function
      | [] -> (List.rev acc, [])
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let rec split acc xs =
      match xs with
      | [] -> List.rev acc
      | _ ->
        let chunk, rest = take per [] xs in
        split (chunk :: acc) rest
    in
    split [] xs
  end

let allocate ?(compensation = Table_approx) ?(rounds = 4) ?workspace:ws ?pool
    metric ~capacity_bytes vbufs =
  if capacity_bytes < 0 then invalid_arg "Dnnk.allocate: negative capacity";
  let ws = match ws with Some ws -> ws | None -> workspace () in
  let capacity = capacity_bytes / block_bytes in
  (* Process buffers in decreasing static-gain order: the row-memo
     compensation then sees a node's dominant terms before its minor
     ones. *)
  let vbufs =
    List.map (fun vb -> (static_gain_of_vbuf ws metric vb, vb)) vbufs
    |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let vbuf_arr = Array.of_list vbufs in
  let n = Array.length vbuf_arr in
  let sizes = Array.map (fun vb -> blocks_of_bytes vb.Vbuffer.size_bytes) vbuf_arr in
  let total_blocks = Array.fold_left ( + ) 0 sizes in
  if total_blocks <= capacity then
    (* Everything fits: pinning all of it dominates any subset. *)
    finish metric ~capacity_blocks:capacity vbufs
      (List.map (fun vb -> vb.Vbuffer.vbuf_id) vbufs)
  else
  let affected = Array.map (affected_nodes_of_vbuf ws metric) vbuf_arr in
  (* Which DP row owns each item, for compensation lookups.  Buffers
     from the coloring pass never share an item; should a hand-built
     input violate that, membership tests fall back to list scans so the
     last-writer-wins owner table stays a pure compensation index. *)
  let owner = Hashtbl.create 256 in
  let shared_items = ref false in
  Array.iteri
    (fun i vb ->
      List.iter
        (fun it ->
          (match Hashtbl.find_opt owner it with
          | Some j when j <> i -> shared_items := true
          | Some _ | None -> ());
          Hashtbl.replace owner it i)
        vb.Vbuffer.members)
    vbuf_arr;
  let member_test index =
    if !shared_items then fun item -> List.mem item vbuf_arr.(index).Vbuffer.members
    else fun item ->
      match Hashtbl.find_opt owner item with
      | Some k -> k = index
      | None -> false
  in
  match compensation with
  | Table_approx ->
    (* Phase A (sequential, cheap): per row, enumerate each affected
       node's queried items to find which earlier DP rows its gain can
       read at all, then try to warm-start the row from the workspace
       cache.  A cached entry is valid only when the freshly discovered
       earlier rows carry the same member lists in the same order (and
       the per-node key widths agree) — then every memo bit denotes the
       same question as when the entry was built, and reusing its
       constants and gain tables is bit-exact.  Shared-item inputs skip
       the cache: their owner table is order-dependent. *)
    let earlier_seen = Array.make n false in
    let on_false _ = false in
    let node_deps = Array.make n [||] in
    let row_deps = Array.make n [||] in
    let dummy_entry =
      { earlier_members = [||];
        node_widths = [||];
        dep_flags = [||];
        const_without = [||];
        const_with = [||];
        const_total = 0.;
        node_memos = [||];
        row_tbl = Row_const }
    in
    let entries = Array.make n dummy_entry in
    let cacheable = not !shared_items in
    let fresh = ref [] in
    for index = 0 to n - 1 do
      let aff = affected.(index) in
      let m = Array.length aff in
      let nd = Array.make m [||] in
      let rows_rev = ref [] in
      for k = 0 to m - 1 do
        let acc = ref [] in
        Metric.iter_queried_items metric aff.(k) (fun item ->
            match Hashtbl.find_opt owner item with
            | Some o when o < index ->
              if not (List.mem o !acc) then acc := o :: !acc;
              if not earlier_seen.(o) then begin
                earlier_seen.(o) <- true;
                rows_rev := o :: !rows_rev
              end
            | Some _ | None -> ());
        if !acc <> [] then nd.(k) <- Array.of_list (List.rev !acc)
      done;
      let deps = Array.of_list (List.rev !rows_rev) in
      Array.iter (fun o -> earlier_seen.(o) <- false) deps;
      node_deps.(index) <- nd;
      row_deps.(index) <- deps;
      let members = vbuf_arr.(index).Vbuffer.members in
      let earlier_members =
        Array.map (fun o -> vbuf_arr.(o).Vbuffer.members) deps
      in
      let node_widths = Array.map Array.length nd in
      let valid e =
        Array.length e.dep_flags = m
        && Array.length e.earlier_members = Array.length earlier_members
        && e.node_widths = node_widths
        && (let ok = ref true in
            Array.iteri
              (fun b ms -> if ms <> e.earlier_members.(b) then ok := false)
              earlier_members;
            !ok)
      in
      match
        if cacheable then Hashtbl.find_opt ws.row_cache members else None
      with
      | Some e when valid e -> entries.(index) <- e
      | Some _ | None ->
        let dep_flags = Array.map (fun d -> Array.length d > 0) nd in
        let width = Array.length deps in
        let row_tbl =
          if width = 0 then Row_const
          else if width <= row_direct_bits then
            Row_direct (Array.make (1 lsl width) Float.nan)
          else if width <= max_key_bits then Row_hash (Hashtbl.create 64)
          else Row_wide
        in
        let node_memos =
          Array.map
            (fun d ->
              let w = Array.length d in
              if w = 0 then Node_const
              else if w <= node_direct_bits then
                Node_direct
                  { p1 = Array.make (1 lsl w) Float.nan;
                    p2 = Array.make (1 lsl w) 0. }
              else if w <= max_key_bits then Node_hash (Hashtbl.create 16)
              else Node_wide)
            nd
        in
        let e =
          { earlier_members;
            node_widths;
            dep_flags;
            const_without = Array.make m 0.;
            const_with = Array.make m 0.;
            const_total = 0.;
            node_memos;
            row_tbl }
        in
        entries.(index) <- e;
        if cacheable then Hashtbl.replace ws.row_cache members e;
        fresh := index :: !fresh
    done;
    let fresh = List.rev !fresh in
    (* Phase B: column-independent constants of the fresh rows.  Rows
       write disjoint entries and only read the metric and the owner
       table, so chunks run on the pool; results are position-addressed,
       making the parallel fill order-independent. *)
    let compute_consts index =
      let e = entries.(index) in
      let aff = affected.(index) in
      let members_only = member_test index in
      let m = Array.length aff in
      for k = 0 to m - 1 do
        if not e.dep_flags.(k) then begin
          e.const_without.(k) <- Metric.node_latency_pred metric ~on:on_false aff.(k);
          e.const_with.(k) <- Metric.node_latency_pred metric ~on:members_only aff.(k)
        end
      done;
      let total = ref 0. in
      for k = 0 to m - 1 do
        if not e.dep_flags.(k) then
          total := !total +. e.const_without.(k) -. e.const_with.(k)
      done;
      e.const_total <- !total
    in
    (match pool with
    | None -> List.iter compute_consts fresh
    | Some pool ->
      ignore
        (Pool.map_list pool
           (fun chunk -> List.iter compute_consts chunk)
           (chunks (4 * Pool.size pool) fresh)));
    (* The (p1, p2) compensation pair of dependent node [k] of the row,
       as a pure function of the node's packed earlier-row bits. *)
    let node_term index k col pbuf_table =
      let e = entries.(index) in
      let nd = node_deps.(index).(k) in
      let compute () =
        let members_only = member_test index in
        let recorded item =
          match Hashtbl.find_opt owner item with
          | Some o when o < index -> pbuf_table.(o + 1).(col)
          | Some _ | None -> false
        in
        let node = affected.(index).(k) in
        let p1 = Metric.node_latency_pred metric ~on:recorded node in
        let p2 =
          Metric.node_latency_pred metric
            ~on:(fun it -> recorded it || members_only it)
            node
        in
        (p1, p2)
      in
      match e.node_memos.(k) with
      | Node_const | Node_wide -> compute ()
      | Node_direct { p1; p2 } ->
        let key = ref 0 in
        Array.iteri
          (fun b o -> if pbuf_table.(o + 1).(col) then key := !key lor (1 lsl b))
          nd;
        let key = !key in
        let v1 = p1.(key) in
        if Float.is_nan v1 then begin
          let a, b = compute () in
          p1.(key) <- a;
          p2.(key) <- b;
          (a, b)
        end
        else (v1, p2.(key))
      | Node_hash tbl ->
        let key = ref 0 in
        Array.iteri
          (fun b o -> if pbuf_table.(o + 1).(col) then key := !key lor (1 lsl b))
          nd;
        (match Hashtbl.find_opt tbl !key with
        | Some v -> v
        | None ->
          let v = compute () in
          Hashtbl.add tbl !key v;
          v)
    in
    (* Whole-row gain at one column, accumulated in the exact node order
       and float operation shape of the reference fold. *)
    let row_gain_at index col pbuf_table =
      let e = entries.(index) in
      let aff = affected.(index) in
      let dep = e.dep_flags in
      let cw = e.const_without in
      let cm = e.const_with in
      let acc = ref 0. in
      for k = 0 to Array.length aff - 1 do
        if dep.(k) then begin
          let p1, p2 = node_term index k col pbuf_table in
          acc := !acc +. p1 -. p2
        end
        else acc := !acc +. cw.(k) -. cm.(k)
      done;
      !acc
    in
    if Array.length ws.key_buf <= capacity then
      ws.key_buf <- Array.make (capacity + 1) 0;
    let fill index ~cols ~pbuf_table ~gains =
      let e = entries.(index) in
      match e.row_tbl with
      | Row_const ->
        for col = 0 to cols - 1 do
          gains.(col) <- e.const_total
        done
      | Row_wide ->
        for col = 0 to cols - 1 do
          gains.(col) <- row_gain_at index col pbuf_table
        done
      | Row_direct tbl ->
        let deps = row_deps.(index) in
        let keys = ws.key_buf in
        Array.fill keys 0 cols 0;
        Array.iteri
          (fun b o ->
            let row = pbuf_table.(o + 1) in
            let bit = 1 lsl b in
            for col = 0 to cols - 1 do
              if row.(col) then keys.(col) <- keys.(col) lor bit
            done)
          deps;
        for col = 0 to cols - 1 do
          let key = keys.(col) in
          let g = tbl.(key) in
          if Float.is_nan g then begin
            let g = row_gain_at index col pbuf_table in
            tbl.(key) <- g;
            gains.(col) <- g
          end
          else gains.(col) <- g
        done
      | Row_hash tbl ->
        let deps = row_deps.(index) in
        let keys = ws.key_buf in
        Array.fill keys 0 cols 0;
        Array.iteri
          (fun b o ->
            let row = pbuf_table.(o + 1) in
            let bit = 1 lsl b in
            for col = 0 to cols - 1 do
              if row.(col) then keys.(col) <- keys.(col) lor bit
            done)
          deps;
        for col = 0 to cols - 1 do
          let key = keys.(col) in
          match Hashtbl.find_opt tbl key with
          | Some g -> gains.(col) <- g
          | None ->
            let g = row_gain_at index col pbuf_table in
            Hashtbl.add tbl key g;
            gains.(col) <- g
        done
    in
    let row_gain index =
      match entries.(index).row_tbl with
      | Row_const -> Const_gain entries.(index).const_total
      | Row_direct _ | Row_hash _ | Row_wide -> Fill_gains (fill index)
    in
    let chosen = knapsack_dp ws ~capacity ~sizes ~row_gain in
    sweep_up metric ~capacity_blocks:capacity
      (finish metric ~capacity_blocks:capacity vbufs
         (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
  | Exact_iterative ->
    (* Round 0 seeds with static (empty-allocation) gains; later rounds
       re-measure each buffer against the previous winner minus itself. *)
    let gains = Array.make n 0. in
    let seed baseline =
      Array.iteri
        (fun i vb ->
          let without_self =
            List.fold_left
              (fun acc it -> Metric.Item_set.remove it acc)
              baseline vb.Vbuffer.members
          in
          gains.(i) <- Metric.marginal_gain_many metric ~on_chip:without_self vb.Vbuffer.members)
        vbuf_arr
    in
    let run () =
      let row_gain index = Const_gain gains.(index) in
      let chosen = knapsack_dp ws ~capacity ~sizes ~row_gain in
      sweep_up metric ~capacity_blocks:capacity
        (finish metric ~capacity_blocks:capacity vbufs
           (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
    in
    seed Metric.Item_set.empty;
    let best = ref (run ()) in
    let continue = ref true in
    let round = ref 1 in
    while !continue && !round < rounds do
      seed !best.on_chip;
      let next = run () in
      if next.predicted_latency < !best.predicted_latency -. 1e-12 then best := next
      else continue := false;
      incr round
    done;
    !best
