type compensation = Table_approx | Exact_iterative

type result = {
  chosen : Vbuffer.t list;
  spilled : Vbuffer.t list;
  on_chip : Metric.Item_set.t;
  predicted_latency : float;
  capacity_blocks : int;
  used_blocks : int;
}

let block_bytes = Fpga.Resource.uram_bytes

let blocks_of_bytes bytes = (bytes + block_bytes - 1) / block_bytes

let items_of_vbufs vbufs =
  List.concat_map (fun vb -> vb.Vbuffer.members) vbufs

let set_of_vbufs vbufs =
  Metric.Item_set.of_list (items_of_vbufs vbufs)

let finish metric ~capacity_blocks vbufs chosen_ids =
  let chosen, spilled =
    List.partition (fun vb -> List.mem vb.Vbuffer.vbuf_id chosen_ids) vbufs
  in
  let on_chip = set_of_vbufs chosen in
  { chosen;
    spilled;
    on_chip;
    predicted_latency = Metric.total_latency metric ~on_chip;
    capacity_blocks;
    used_blocks =
      List.fold_left
        (fun acc vb -> acc + blocks_of_bytes vb.Vbuffer.size_bytes)
        0 chosen }

(* Nodes whose latency any member of the buffer influences. *)
let affected_nodes_of_vbuf metric vb =
  List.concat_map (Metric.affected_nodes metric) vb.Vbuffer.members
  |> List.sort_uniq compare

(* One 0/1-knapsack DP over virtual buffers.  [gain_at] supplies the
   value of buffer [i] when placed at source column [col] (allowing the
   paper's table-based compensation); the memo of placement bits is
   exposed to it through [pbuf_table]. *)
let knapsack_dp ~capacity ~sizes ~gain_at =
  let n = Array.length sizes in
  let prev = Array.make (capacity + 1) 0. in
  let curr = Array.make (capacity + 1) 0. in
  let pbuf_table = Array.make_matrix (n + 1) (capacity + 1) false in
  for i = 1 to n do
    let s = sizes.(i - 1) in
    for j = 0 to capacity do
      let without = prev.(j) in
      if s <= j then begin
        let col = j - s in
        let with_gain = prev.(col) +. gain_at ~index:(i - 1) ~col ~pbuf_table in
        if with_gain > without then begin
          curr.(j) <- with_gain;
          pbuf_table.(i).(j) <- true
        end
        else curr.(j) <- without
      end
      else curr.(j) <- without
    done;
    Array.blit curr 0 prev 0 (capacity + 1)
  done;
  (* Backtrace the memo into the chosen index set. *)
  let rec back i j acc =
    if i = 0 then acc
    else if pbuf_table.(i).(j) then back (i - 1) (j - sizes.(i - 1)) ((i - 1) :: acc)
    else back (i - 1) j acc
  in
  back n capacity []

(* Greedy repair after the DP: while spare capacity remains, pull back any
   spilled buffer whose marginal gain against the chosen set is positive.
   This recovers value the max-structure hides from per-row compensation
   (a term only pays off once its node's larger terms are also pinned). *)
let sweep_up metric ~capacity_blocks result =
  let rec loop result =
    let free = capacity_blocks - result.used_blocks in
    let candidate =
      List.filter_map
        (fun vb ->
          let blocks = blocks_of_bytes vb.Vbuffer.size_bytes in
          if blocks > free then None
          else
            let gain =
              Metric.marginal_gain_many metric ~on_chip:result.on_chip
                vb.Vbuffer.members
            in
            if gain > 1e-15 then Some (gain, vb) else None)
        result.spilled
    in
    match candidate with
    | [] -> result
    | first :: rest ->
      let _, best =
        List.fold_left (fun (bg, bv) (g, v) -> if g > bg then (g, v) else (bg, bv))
          first rest
      in
      let chosen = best :: result.chosen in
      let on_chip =
        List.fold_left
          (fun acc it -> Metric.Item_set.add it acc)
          result.on_chip best.Vbuffer.members
      in
      loop
        { result with
          chosen;
          spilled =
            List.filter (fun vb -> vb.Vbuffer.vbuf_id <> best.Vbuffer.vbuf_id)
              result.spilled;
          on_chip;
          predicted_latency = Metric.total_latency metric ~on_chip;
          used_blocks = result.used_blocks + blocks_of_bytes best.Vbuffer.size_bytes }
  in
  loop result

(* Degraded-mode eviction: the inverse of the knapsack.  When capacity
   shrinks under a live allocation (an SRAM bank drops out), drop chosen
   buffers in increasing benefit-density order — marginal gain against
   the current set per occupied block — until the survivors fit.  The
   runtime's bank-loss handler and the degraded-plan oracle share this
   routine.  Returns the shrunken result plus the evicted buffers in
   eviction order. *)
let evict_to_capacity metric ~capacity_bytes result =
  if capacity_bytes < 0 then
    invalid_arg "Dnnk.evict_to_capacity: negative capacity";
  let capacity_blocks = capacity_bytes / block_bytes in
  let density on_chip vb =
    let without =
      List.fold_left
        (fun acc it -> Metric.Item_set.remove it acc)
        on_chip vb.Vbuffer.members
    in
    let gain = Metric.marginal_gain_many metric ~on_chip:without vb.Vbuffer.members in
    gain /. float_of_int (max 1 (blocks_of_bytes vb.Vbuffer.size_bytes))
  in
  let rec loop result evicted =
    if result.used_blocks <= capacity_blocks then (result, List.rev evicted)
    else
      match result.chosen with
      | [] -> (result, List.rev evicted)
      | first :: rest ->
        let _, worst =
          List.fold_left
            (fun ((bd, _) as best) vb ->
              let d = density result.on_chip vb in
              if d < bd then (d, vb) else best)
            (density result.on_chip first, first)
            rest
        in
        let on_chip =
          List.fold_left
            (fun acc it -> Metric.Item_set.remove it acc)
            result.on_chip worst.Vbuffer.members
        in
        loop
          { result with
            chosen =
              List.filter
                (fun vb -> vb.Vbuffer.vbuf_id <> worst.Vbuffer.vbuf_id)
                result.chosen;
            spilled = worst :: result.spilled;
            on_chip;
            predicted_latency = Metric.total_latency metric ~on_chip;
            used_blocks = result.used_blocks - blocks_of_bytes worst.Vbuffer.size_bytes }
          (worst :: evicted)
  in
  let result, evicted = loop result [] in
  ({ result with capacity_blocks }, evicted)

let allocate ?(compensation = Table_approx) ?(rounds = 4) metric ~capacity_bytes
    vbufs =
  if capacity_bytes < 0 then invalid_arg "Dnnk.allocate: negative capacity";
  let capacity = capacity_bytes / block_bytes in
  (* Process buffers in decreasing static-gain order: the row-memo
     compensation then sees a node's dominant terms before its minor
     ones. *)
  let vbufs =
    List.map
      (fun vb ->
        (Metric.marginal_gain_many metric ~on_chip:Metric.Item_set.empty
           vb.Vbuffer.members, vb))
      vbufs
    |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let vbuf_arr = Array.of_list vbufs in
  let n = Array.length vbuf_arr in
  let sizes = Array.map (fun vb -> blocks_of_bytes vb.Vbuffer.size_bytes) vbuf_arr in
  let total_blocks = Array.fold_left ( + ) 0 sizes in
  if total_blocks <= capacity then
    (* Everything fits: pinning all of it dominates any subset. *)
    finish metric ~capacity_blocks:capacity vbufs
      (List.map (fun vb -> vb.Vbuffer.vbuf_id) vbufs)
  else
  let affected = Array.map (affected_nodes_of_vbuf metric) vbuf_arr in
  (* Which DP row owns each item, for compensation lookups. *)
  let owner = Hashtbl.create 256 in
  Array.iteri
    (fun i vb -> List.iter (fun it -> Hashtbl.replace owner it i) vb.Vbuffer.members)
    vbuf_arr;
  match compensation with
  | Table_approx ->
    let gain_at ~index ~col ~pbuf_table =
      let members = vbuf_arr.(index).Vbuffer.members in
      let recorded item =
        match Hashtbl.find_opt owner item with
        | Some k when k < index -> pbuf_table.(k + 1).(col)
        | Some _ | None -> false
      in
      let with_members item = recorded item || List.mem item members in
      List.fold_left
        (fun acc node ->
          acc
          +. Metric.node_latency_pred metric ~on:recorded node
          -. Metric.node_latency_pred metric ~on:with_members node)
        0. affected.(index)
    in
    let chosen = knapsack_dp ~capacity ~sizes ~gain_at in
    sweep_up metric ~capacity_blocks:capacity
      (finish metric ~capacity_blocks:capacity vbufs
         (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
  | Exact_iterative ->
    (* Round 0 seeds with static (empty-allocation) gains; later rounds
       re-measure each buffer against the previous winner minus itself. *)
    let gains = Array.make n 0. in
    let seed baseline =
      Array.iteri
        (fun i vb ->
          let without_self =
            List.fold_left
              (fun acc it -> Metric.Item_set.remove it acc)
              baseline vb.Vbuffer.members
          in
          gains.(i) <- Metric.marginal_gain_many metric ~on_chip:without_self vb.Vbuffer.members)
        vbuf_arr
    in
    let run () =
      let gain_at ~index ~col:_ ~pbuf_table:_ = gains.(index) in
      let chosen = knapsack_dp ~capacity ~sizes ~gain_at in
      sweep_up metric ~capacity_blocks:capacity
        (finish metric ~capacity_blocks:capacity vbufs
           (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
    in
    seed Metric.Item_set.empty;
    let best = ref (run ()) in
    let continue = ref true in
    let round = ref 1 in
    while !continue && !round < rounds do
      seed !best.on_chip;
      let next = run () in
      if next.predicted_latency < !best.predicted_latency -. 1e-12 then best := next
      else continue := false;
      incr round
    done;
    !best
