(** A fixed-size worker pool on OCaml 5 domains.

    The LCMM passes are pure functions of their inputs (no global
    mutable state anywhere in [lib/core], [lib/accel] or [lib/sim]), so
    independent compile/simulate requests — and the independent
    per-row/per-tenant pieces inside one planner run — are safe to run
    on separate domains with no coordination beyond this queue.  The
    parallel-determinism property test in [test/test_parallel.ml] pins
    down that plans computed through a pool are byte-identical to
    sequential ones.

    Jobs are closures; submitting returns a future that [await] blocks
    on.  Ordinary exceptions escaping a job are captured and re-raised
    (or returned) at the await site, never killing a worker.  Crash
    exceptions ({!Worker_crash}, [Stack_overflow], [Out_of_memory])
    additionally take the worker down after completing the job's future
    — a supervisor restarts it in place and bumps {!restarts}, so the
    pool keeps its full width and the in-flight request is answered
    with the error rather than hanging. *)

type t

exception Worker_crash of string
(** A designated worker-killing failure: the job's future fails with
    it, the executing worker dies and is restarted by the supervisor. *)

val create : ?domains:int -> unit -> t
(** Spawn the worker domains.  [domains] defaults to
    [Domain.recommended_domain_count () - 1], clamped to [1, 8]; values
    below 1 raise [Invalid_argument]. *)

val size : t -> int
(** Number of worker domains. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> ('a, exn) result

val await_within : seconds:float -> 'a future -> ('a, exn) result option
(** Like {!await} but gives up after [seconds], returning [None].  The
    job itself is not cancelled — it keeps its worker until it finishes;
    the caller merely stops waiting (the service turns [None] into a
    structured deadline-exceeded error).  A non-positive budget checks
    once and returns immediately. *)

val run : t -> (unit -> 'a) -> 'a
(** [submit] then [await], re-raising the job's exception. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving order.  While its futures are pending the
    caller *helps*: it drains queued jobs and runs them inline instead
    of blocking, so calling [map_list] from inside a pool job is safe —
    nested fan-outs keep making progress even with every worker busy.
    The caller only blocks once the queue is empty, at which point its
    remaining futures are necessarily running on other domains. *)

val help_one : t -> bool
(** Steal one queued job and run it on the calling thread; [false] when
    the queue was empty.  Exposed for custom waiting loops. *)

val busy : t -> int
(** Workers currently executing a job. *)

val queued : t -> int
(** Jobs accepted but not yet started. *)

val restarts : t -> int
(** Workers restarted by the supervisor after a crash. *)

val shutdown : t -> unit
(** Drain the queue, join every domain.  Idempotent. *)
