type outcome = {
  result : Dnnk.result;
  iterations : int;
  false_edges : int;
  history : float list;
  converged : bool;
}

(* Index of an item in the interference graph (first occurrence, via
   the graph's item index). *)
let index_of = Interference.index_of_item

(* The split candidate: largest spilled buffer with >= 2 members whose top
   two members are not already separated by an edge. *)
let candidate interference spilled =
  let viable vb =
    match vb.Vbuffer.members with
    | first :: second :: _ -> (
      match index_of interference first, index_of interference second with
      | Some i, Some j when not (Interference.conflict interference i j) ->
        Some (vb, i, j)
      | Some _, Some _ | None, _ | Some _, None -> None)
    | [] | [ _ ] -> None
  in
  List.filter_map viable spilled
  |> List.fold_left
       (fun best ((vb, _, _) as cand) ->
         match best with
         | Some (b, _, _) when b.Vbuffer.size_bytes >= vb.Vbuffer.size_bytes -> best
         | Some _ | None -> Some cand)
       None

let run ?(max_iterations = 16) ?compensation ?strategy ?workspace ?pool metric
    interference ~sizes ~capacity_bytes initial =
  (* [history] collects the objective after the initial allocation and
     after each *accepted* re-run, newest first; the acceptance test
     ([< best - 1e-12]) makes it strictly decreasing, which the zoo
     regression tests pin down.  [converged] records whether the loop
     stopped because no candidate improved (true) or only because it
     hit the iteration bound (false). *)
  let rec loop best iterations edges history =
    if iterations >= max_iterations then
      { result = best;
        iterations;
        false_edges = edges;
        history = List.rev history;
        converged = false }
    else
      match candidate interference best.Dnnk.spilled with
      | None ->
        { result = best;
          iterations;
          false_edges = edges;
          history = List.rev history;
          converged = true }
      | Some (_vb, i, j) ->
        Interference.add_false_edge interference i j;
        let vbufs = Coloring.color ?strategy interference ~sizes in
        let next =
          Dnnk.allocate ?compensation ?workspace ?pool metric ~capacity_bytes
            vbufs
        in
        if next.Dnnk.predicted_latency < best.Dnnk.predicted_latency -. 1e-12 then
          loop next (iterations + 1) (edges + 1)
            (next.Dnnk.predicted_latency :: history)
        else
          { result = best;
            iterations;
            false_edges = edges + 1;
            history = List.rev history;
            converged = true }
  in
  loop initial 0 0 [ initial.Dnnk.predicted_latency ]
