module Pair_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

(* Adjacency is materialised once at [build] into packed bitset rows:
   lifespan overlaps come from a sweep-line over start-sorted intervals
   (O(n log n + edges)), [never_share_class] partitions are or-ed in as
   whole class masks, and the generic [never_share] predicate (used by
   small differential-test graphs) falls back to a pairwise fill.
   [conflict]/[degree] are then plain word-parallel bit tests with no
   closure calls on the query path. *)
type t = {
  items : Metric.item array;
  intervals : Liveness.interval array;
  rows : Bitset.t array;
  index : (Metric.item, int) Hashtbl.t;
  mutable false_edges : Pair_set.t;
}

let fill_overlaps rows intervals =
  let n = Array.length intervals in
  let valid = ref true in
  for i = 0 to n - 1 do
    if intervals.(i).Liveness.end_pos < intervals.(i).Liveness.start_pos then
      valid := false
  done;
  if not !valid then
    (* Degenerate hand-built intervals: keep the naive quadratic fill. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Liveness.overlaps intervals.(i) intervals.(j) then begin
          Bitset.set rows.(i) j;
          Bitset.set rows.(j) i
        end
      done
    done
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare intervals.(a).Liveness.start_pos intervals.(b).Liveness.start_pos)
      order;
    (* Sweep in ascending start order.  [active] holds earlier intervals
       whose end has not passed the current start; each survivor overlaps
       the current interval, so the per-step compaction cost is charged
       to emitted edges. *)
    let active = ref (Array.make 16 0) in
    let active_len = ref 0 in
    Array.iter
      (fun i ->
        let start = intervals.(i).Liveness.start_pos in
        let kept = ref 0 in
        for k = 0 to !active_len - 1 do
          let j = !active.(k) in
          if intervals.(j).Liveness.end_pos >= start then begin
            !active.(!kept) <- j;
            incr kept;
            Bitset.set rows.(i) j;
            Bitset.set rows.(j) i
          end
        done;
        active_len := !kept;
        if !active_len = Array.length !active then begin
          let grown = Array.make (2 * Array.length !active) 0 in
          Array.blit !active 0 grown 0 !active_len;
          active := grown
        end;
        !active.(!active_len) <- i;
        incr active_len)
      order
  end

let fill_classes rows items classify =
  let n = Array.length items in
  let classes = Array.map classify items in
  let masks = Hashtbl.create 4 in
  Array.iteri
    (fun i c ->
      let mask =
        match Hashtbl.find_opt masks c with
        | Some m -> m
        | None ->
            let m = Bitset.create n in
            Hashtbl.add masks c m;
            m
      in
      Bitset.set mask i)
    classes;
  if Hashtbl.length masks > 1 then
    Array.iteri
      (fun i c ->
        Hashtbl.iter
          (fun c' mask -> if c' <> c then Bitset.union_into ~dst:rows.(i) mask)
          masks)
      classes

let fill_pairwise rows items never_share =
  let n = Array.length items in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if never_share items.(i) items.(j) then begin
        Bitset.set rows.(i) j;
        Bitset.set rows.(j) i
      end
    done
  done

let build ?never_share ?never_share_class ~items ~intervals () =
  if Array.length items <> Array.length intervals then
    invalid_arg "Interference.build: mismatched array lengths";
  let n = Array.length items in
  let rows = Array.init n (fun _ -> Bitset.create n) in
  fill_overlaps rows intervals;
  (match never_share_class with
  | Some classify -> fill_classes rows items classify
  | None -> ());
  (match never_share with
  | Some pred -> fill_pairwise rows items pred
  | None -> ());
  let index = Hashtbl.create (2 * n) in
  (* First occurrence wins, matching a forward linear scan. *)
  for i = n - 1 downto 0 do
    Hashtbl.replace index items.(i) i
  done;
  { items; intervals; rows; index; false_edges = Pair_set.empty }

let item_count t = Array.length t.items

let check_index t i =
  if i < 0 || i >= item_count t then
    invalid_arg (Printf.sprintf "Interference: index %d out of range" i)

let item t i =
  check_index t i;
  t.items.(i)

let interval t i =
  check_index t i;
  t.intervals.(i)

let index_of_item t item = Hashtbl.find_opt t.index item

let ordered i j = if i < j then (i, j) else (j, i)

let add_false_edge t i j =
  check_index t i;
  check_index t j;
  if i = j then invalid_arg "Interference.add_false_edge: self edge";
  t.false_edges <- Pair_set.add (ordered i j) t.false_edges;
  Bitset.set t.rows.(i) j;
  Bitset.set t.rows.(j) i

let false_edges t = Pair_set.elements t.false_edges

let conflict t i j =
  check_index t i;
  check_index t j;
  i <> j && Bitset.mem t.rows.(i) j

let row t i =
  check_index t i;
  t.rows.(i)

let degree t i =
  check_index t i;
  Bitset.cardinal t.rows.(i)
