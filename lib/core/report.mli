(** Formatted reports and CSV export.

    The CLI and the bench harness share these renderers so their output
    stays consistent and testable: a human-readable plan summary, a
    Table-1-style comparison table, and CSV series (design-space points,
    comparisons) for external plotting. *)

val plan_summary : Dnn_graph.Graph.t -> Framework.plan -> string
(** Multi-line summary: design point, buffer counts, pinned bytes, POL,
    predicted latency vs the UMM reference. *)

val comparison_row : Framework.comparison -> string
(** One aligned row: model, precision, UMM and LCMM latency/Tops,
    utilizations, speedup. *)

val comparison_header : string
(** Column header matching {!comparison_row}. *)

val csv_of_comparisons :
  ?fusion_ms:(Framework.comparison -> float option) ->
  Framework.comparison list -> string
(** RFC-4180-style CSV (header + one line per comparison).  When
    [fusion_ms] is given, a trailing [fusion_ms] column is appended
    after every pre-existing field — header stays backward-compatible
    for positional consumers — holding the fused-plan latency in
    milliseconds (empty cell when the callback returns [None]). *)

val csv_of_design_points : Design_space.point list -> string
(** CSV of (mask, sram_bytes, latency_ms, tops) — the paper's Fig. 2(b)
    scatter, ready for plotting. *)

val write_text_file : path:string -> string -> unit
