(* Packed bitsets over native ints.  Bit [i] of a set lives in word
   [i / word_bits] at position [i mod word_bits]; only the low
   [Sys.int_size - 1] usable bits of each word are populated so every
   word stays a non-negative OCaml immediate. *)

let word_bits = Sys.int_size - 1

type t = { words : int array; width : int }

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { words = Array.make ((width + word_bits - 1) / word_bits) 0; width }

let width t = t.width

let check t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitset: bit %d out of range" i)

let set t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let clear t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let union_into ~dst src =
  if dst.width <> src.width then invalid_arg "Bitset.union_into: width mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_empty a b =
  if a.width <> b.width then invalid_arg "Bitset.inter_empty: width mismatch";
  let n = Array.length a.words in
  let rec go w = w >= n || (a.words.(w) land b.words.(w) = 0 && go (w + 1)) in
  go 0

(* Kernighan's trick: one iteration per set bit. *)
let popcount_word x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    let base = w * word_bits in
    while !word <> 0 do
      let low = !word land (- !word) in
      f (base + popcount_word (low - 1));
      word := !word land (!word - 1)
    done
  done
