(** Allocation items, metric tables and the exact latency evaluator.

    An *item* is one pinnable unit of data: a feature value (covering the
    producer's output stream and every consumer's input stream of that
    value) or the weight tensor of one node.  The metric tables bind the
    per-node latency profiles of {!Accel.Latency} to the items they
    depend on, so allocation algorithms can ask two questions: the exact
    whole-network latency of an allocation, and the marginal latency
    reduction of pinning one more item (the paper's Eq. 2, evaluated
    against an explicit allocation instead of a static table). *)

type item =
  | Feature_value of int  (** Value id = producing node id. *)
  | Weight_of of int      (** Node id owning the weight tensor. *)
  | Weight_slice of { node : int; index : int; of_k : int }
      (** One of [of_k] equal channel-group slices of a node's weight
          tensor — partial weight pinning, an extension beyond the
          paper's whole-tensor granularity.  A node's weights appear
          either as one [Weight_of] or as [of_k] slices, never both. *)

module Item_set : Set.S with type elt = item

type t = private {
  graph : Dnn_graph.Graph.t;
  profiles : Accel.Latency.profile array;
  affected : (item, int list) Hashtbl.t;
      (** Nodes whose Eq. 1 latency depends on each item. *)
  slices : int array;
      (** Weight slicing granularity per node (1 = whole tensor). *)
}

val build :
  ?weight_slices:(int -> int) -> Dnn_graph.Graph.t ->
  Accel.Latency.profile array -> t
(** [weight_slices node] (default [fun _ -> 1]) picks the slicing
    granularity per weight-carrying node; values above 1 replace the
    node's [Weight_of] item with that many [Weight_slice] items. *)

val item_size_bytes : Tensor.Dtype.t -> t -> item -> int
(** Storage the item needs on chip. *)

val affected_nodes : t -> item -> int list
(** Nodes whose latency changes when the item's placement changes. *)

val node_latency : t -> on_chip:Item_set.t -> int -> float
(** Eq. 1 latency of one node under the allocation. *)

val node_latency_pred : t -> on:(item -> bool) -> int -> float
(** Like {!node_latency} with the allocation as a predicate — the hot
    path of DNNK's inner loop, avoiding set construction. *)

val iter_queried_items : t -> int -> (item -> unit) -> unit
(** [iter_queried_items t id f] calls [f] on exactly the items
    {!node_latency_pred} queries for node [id], in query order.  DNNK's
    compensation tables derive their memo-key bit layout from this
    enumeration; it is a pure function of the metric. *)

val total_latency : t -> on_chip:Item_set.t -> float
(** Whole-network latency (sequential node execution). *)

val marginal_gain : t -> on_chip:Item_set.t -> item -> float
(** Latency saved by adding the item to the allocation; >= 0. *)

val marginal_gain_many : t -> on_chip:Item_set.t -> item list -> float
(** Latency saved by adding all the items together. *)

val static_reduction : t -> item -> float
(** The paper's Eq. 2: the item's latency reduction computed against the
    all-off-chip state, per affected node with the next-largest term as
    the post-removal latency.  Used to seed DNNK's approximate tables. *)

val eligible_items :
  t -> memory_bound_only:bool -> item list
(** Pinnable items: feature values not produced by the graph input and
    with at least one consumer; weight tensors of weight-carrying nodes.
    With [memory_bound_only] (the paper's setting), an item qualifies
    only if at least one affected node is memory bound. *)

val pp_item : Format.formatter -> item -> unit
