type strategy = Min_growth | First_fit

(* Mutable buffer accumulator during coloring. *)
type partial = {
  mutable size : int;
  mutable members : (int * Metric.item * int) list;  (* index, item, size *)
}

(* A buffer is compatible when no member's bit is set in the item's
   packed adjacency row.  The scan short-circuits on the first
   conflicting member — one bit test rejects a structurally
   incompatible (e.g. cross-pool) buffer outright. *)
let compatible row part =
  List.for_all (fun (j, _, _) -> not (Bitset.mem row j)) part.members

let order strategy interference sizes =
  let indices = List.init (Array.length sizes) Fun.id in
  match strategy with
  | Min_growth ->
    List.sort (fun a b -> compare sizes.(b) sizes.(a)) indices
  | First_fit ->
    (* Degrees are popcounts over adjacency rows; computing all of them
       once keeps the sort comparator allocation- and scan-free. *)
    let degree = Array.init (Array.length sizes) (Interference.degree interference) in
    List.sort (fun a b -> compare degree.(b) degree.(a)) indices

let color ?(strategy = Min_growth) interference ~sizes =
  if Array.length sizes <> Interference.item_count interference then
    invalid_arg "Coloring.color: sizes length mismatch";
  let buffers : partial list ref = ref [] in
  let place index =
    let size = sizes.(index) in
    let row = Interference.row interference index in
    let candidates = List.filter (compatible row) !buffers in
    let chosen =
      match strategy with
      | First_fit -> (match candidates with part :: _ -> Some part | [] -> None)
      | Min_growth ->
        let growth part = max 0 (size - part.size) in
        List.fold_left
          (fun best part ->
            match best with
            | None -> Some part
            | Some b -> if growth part < growth b then Some part else best)
          None candidates
    in
    match chosen with
    | Some part ->
      part.size <- max part.size size;
      part.members <- (index, Interference.item interference index, size) :: part.members
    | None ->
      buffers :=
        !buffers
        @ [ { size; members = [ (index, Interference.item interference index, size) ] } ]
  in
  List.iter place (order strategy interference sizes);
  List.mapi
    (fun vbuf_id part ->
      Vbuffer.make ~vbuf_id
        ~sized_members:(List.map (fun (_, item, s) -> (item, s)) part.members))
    !buffers

let total_bytes buffers =
  List.fold_left (fun acc b -> acc + b.Vbuffer.size_bytes) 0 buffers
