(** Static DDR channel assignment.

    The board's DDR is not one pipe: the device exposes
    [Fpga.Device.ddr_channels] independently schedulable channels, each
    carrying an equal stripe of the aggregate bandwidth.  This pass maps
    every DDR stream a plan will issue — whole weight loads (prefetched
    or demand-fetched), streamed weight tiles, off-chip input-feature
    streams and output write-backs — onto a channel, balancing total
    bytes per channel with a longest-processing-time greedy.  The result
    is deterministic (a pure function of the metric and allocation) and
    byte-count balanced, and with [channels = 1] every stream lands on
    channel 0, recovering the aggregate fluid-bus model exactly. *)

type stream_class =
  | Wt_load    (** Whole weight-tensor load (prefetch or demand). *)
  | Wt_stream  (** Streamed weight tiles of an unpinned remainder. *)
  | If_stream  (** Off-chip input-feature stream. *)
  | Of_stream  (** Output feature write-back. *)

type assignment = {
  channels : int;
  wt_load_channel : int array;   (** Per node; [-1] when no such stream. *)
  wt_stream_channel : int array;
  if_channel : int array;
  of_channel : int array;
  channel_bytes : float array;   (** Total assigned DDR bytes per channel. *)
}

val assign :
  channels:int -> Metric.t -> on_chip:Metric.Item_set.t -> assignment
(** Assign every stream of the allocation to a channel.  Heaviest
    stream first onto the least-loaded channel; ties break by node id,
    stream class, then lowest channel index. *)

val channel_for : assignment -> stream_class -> int -> int
(** [channel_for a cls node] — the channel of [node]'s [cls] stream;
    0 for nodes without one (a safe default for transfers created by
    degraded-mode replans the static assignment never saw). *)

val balance : assignment -> float
(** Min/max channel load ratio; 1.0 = perfectly balanced. *)

val total_bytes : assignment -> float
