(** Interference graphs over allocation items (paper Fig. 5a).

    Two items interfere when their lifespans overlap — they can then
    never share a buffer.  The buffer-splitting pass additionally injects
    *false* interference edges between chosen non-overlapping pairs to
    force them into different virtual buffers.

    Adjacency is materialised once at [build] into packed bitset rows
    (sweep-line over start-sorted intervals), so [conflict] and [degree]
    are word-parallel bit tests rather than per-query closure calls. *)

type t

val build :
  ?never_share:(Metric.item -> Metric.item -> bool) ->
  ?never_share_class:(Metric.item -> int) ->
  items:Metric.item array -> intervals:Liveness.interval array -> unit -> t
(** Raises [Invalid_argument] when the arrays differ in length.
    [never_share] marks structurally incompatible pairs (e.g. a feature
    and a weight tensor, which live in separate buffer pools) as
    permanently conflicting regardless of lifespans; it is evaluated
    pairwise at build time.  [never_share_class] expresses the same
    constraint as a partition — items in *different* classes always
    conflict — and is folded in with whole-row mask unions, which is the
    fast path the planner uses. *)

val item_count : t -> int

val item : t -> int -> Metric.item
(** Item at the given index. *)

val interval : t -> int -> Liveness.interval

val index_of_item : t -> Metric.item -> int option
(** Index of the first occurrence of an item, as a forward linear scan
    would find it. *)

val add_false_edge : t -> int -> int -> unit
(** Force items at the two indices apart.  Idempotent; raises
    [Invalid_argument] on equal or out-of-range indices. *)

val false_edges : t -> (int * int) list
(** Injected edges, as ordered index pairs. *)

val conflict : t -> int -> int -> bool
(** Lifespan overlap or false edge. *)

val row : t -> int -> Bitset.t
(** The packed adjacency row of an item.  Callers must treat it as
    read-only; it aliases the graph's internal state. *)

val degree : t -> int -> int
(** Number of items in conflict with the item at the given index. *)
