module Latency = Accel.Latency

(* DDR channel assignment (paper-adjacent: SoMa's communication
   scheduling treats the channel a transfer lands on as a planning
   decision).  The device stripes its aggregate bandwidth over
   [channels] equal channels; this pass statically maps every DDR
   stream a plan will issue — weight loads (prefetch or demand),
   streamed weight tiles, input-feature streams, output write-backs —
   onto a channel, balancing total bytes.  With [channels = 1]
   everything lands on channel 0 and the runtime's aggregate fluid-bus
   model is recovered exactly. *)

type stream_class = Wt_load | Wt_stream | If_stream | Of_stream

type assignment = {
  channels : int;
  wt_load_channel : int array;    (* per node; -1 = no such stream *)
  wt_stream_channel : int array;
  if_channel : int array;
  of_channel : int array;
  channel_bytes : float array;    (* total assigned DDR bytes per channel *)
}

(* Mirror of Sim.Node_model.pinned_fraction, local to core (sim depends
   on core, not the other way around). *)
let pinned_fraction (metric : Metric.t) ~on_chip id =
  let k = metric.Metric.slices.(id) in
  if k = 1 then
    if Metric.Item_set.mem (Metric.Weight_of id) on_chip then 1. else 0.
  else begin
    let count = ref 0 in
    for index = 0 to k - 1 do
      if
        Metric.Item_set.mem
          (Metric.Weight_slice { node = id; index; of_k = k })
          on_chip
      then incr count
    done;
    float_of_int !count /. float_of_int k
  end

let class_rank = function
  | Wt_load -> 0
  | Wt_stream -> 1
  | If_stream -> 2
  | Of_stream -> 3

let assign ~channels (metric : Metric.t) ~on_chip =
  let channels = max 1 channels in
  let profiles = metric.Metric.profiles in
  let n = Array.length profiles in
  let a =
    { channels;
      wt_load_channel = Array.make n (-1);
      wt_stream_channel = Array.make n (-1);
      if_channel = Array.make n (-1);
      of_channel = Array.make n (-1);
      channel_bytes = Array.make channels 0. }
  in
  (* Collect every stream the runtime can issue, with its DDR bytes. *)
  let streams = ref [] in
  Array.iteri
    (fun id (p : Latency.profile) ->
      let frac = pinned_fraction metric ~on_chip id in
      if frac > 0. && p.Latency.wt_once_bytes > 0 then
        streams :=
          (float_of_int p.Latency.wt_once_bytes *. frac, Wt_load, id)
          :: !streams;
      if p.Latency.wt_term > 0. && frac < 1. && p.Latency.wt_stream_bytes > 0
      then
        streams :=
          (float_of_int p.Latency.wt_stream_bytes *. (1. -. frac),
           Wt_stream, id)
          :: !streams;
      let if_bytes =
        List.fold_left
          (fun acc (v, b) ->
            if Metric.Item_set.mem (Metric.Feature_value v) on_chip then acc
            else acc + b)
          0 p.Latency.if_stream_bytes
      in
      if if_bytes > 0 then
        streams := (float_of_int if_bytes, If_stream, id) :: !streams;
      if
        p.Latency.of_stream_bytes > 0
        && not (Metric.Item_set.mem (Metric.Feature_value id) on_chip)
      then
        streams :=
          (float_of_int p.Latency.of_stream_bytes, Of_stream, id) :: !streams)
    profiles;
  (* Longest-processing-time greedy: heaviest stream first onto the
     least-loaded channel.  Ties break deterministically (node id, then
     class order, then lowest channel), so the assignment is a pure
     function of the plan. *)
  let ordered =
    List.sort
      (fun (b1, c1, n1) (b2, c2, n2) ->
        match compare b2 b1 with
        | 0 -> (
          match compare n1 n2 with
          | 0 -> compare (class_rank c1) (class_rank c2)
          | c -> c)
        | c -> c)
      !streams
  in
  List.iter
    (fun (bytes, cls, id) ->
      let best = ref 0 in
      for c = 1 to channels - 1 do
        if a.channel_bytes.(c) < a.channel_bytes.(!best) then best := c
      done;
      let c = !best in
      a.channel_bytes.(c) <- a.channel_bytes.(c) +. bytes;
      (match cls with
      | Wt_load -> a.wt_load_channel.(id) <- c
      | Wt_stream -> a.wt_stream_channel.(id) <- c
      | If_stream -> a.if_channel.(id) <- c
      | Of_stream -> a.of_channel.(id) <- c))
    ordered;
  a

let channel_for a cls node =
  let arr =
    match cls with
    | Wt_load -> a.wt_load_channel
    | Wt_stream -> a.wt_stream_channel
    | If_stream -> a.if_channel
    | Of_stream -> a.of_channel
  in
  if node < 0 || node >= Array.length arr then 0
  else
    let c = arr.(node) in
    if c < 0 || c >= a.channels then 0 else c

let balance a =
  let lo = Array.fold_left Float.min Float.max_float a.channel_bytes in
  let hi = Array.fold_left Float.max 0. a.channel_bytes in
  if hi <= 0. then 1. else lo /. hi

let total_bytes a = Array.fold_left ( +. ) 0. a.channel_bytes
