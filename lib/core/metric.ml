module G = Dnn_graph.Graph
module Values = Dnn_graph.Values
module Latency = Accel.Latency
module Shape = Tensor.Shape

type item =
  | Feature_value of int
  | Weight_of of int
  | Weight_slice of { node : int; index : int; of_k : int }

module Item_set = Set.Make (struct
  type t = item

  let compare = Stdlib.compare
end)

type t = {
  graph : G.t;
  profiles : Latency.profile array;
  affected : (item, int list) Hashtbl.t;
  slices : int array;
}

let build ?(weight_slices = fun _ -> 1) graph profiles =
  let affected = Hashtbl.create 256 in
  let slices = Array.make (Array.length profiles) 1 in
  Array.iter
    (fun p ->
      let id = p.Latency.node_id in
      if p.Latency.wt_term > 0. then begin
        let k = max 1 (weight_slices id) in
        slices.(id) <- k;
        if k = 1 then Hashtbl.replace affected (Weight_of id) [ id ]
        else
          for index = 0 to k - 1 do
            Hashtbl.replace affected (Weight_slice { node = id; index; of_k = k }) [ id ]
          done
      end)
    profiles;
  (* A feature value affects its producer (output stream) and every
     consumer (input stream). *)
  for v = 0 to G.node_count graph - 1 do
    if Values.is_value graph v then begin
      let consumers = Values.consumers graph v in
      let nodes =
        if profiles.(v).Latency.of_term > 0. then v :: consumers else consumers
      in
      if nodes <> [] then Hashtbl.replace affected (Feature_value v) nodes
    end
  done;
  { graph; profiles; affected; slices }

let weight_bytes dtype t n =
  match G.weight_shape t.graph n with
  | None -> 0
  | Some shape -> Shape.size_bytes dtype shape

let item_size_bytes dtype t = function
  | Feature_value v -> Shape.size_bytes dtype (G.output_shape t.graph v)
  | Weight_of n -> weight_bytes dtype t n
  | Weight_slice { node; of_k; _ } ->
    (weight_bytes dtype t node + of_k - 1) / of_k

let affected_nodes t item =
  match Hashtbl.find_opt t.affected item with Some l -> l | None -> []

(* Eq. 1 with fractional weight residency: the streamed share of a sliced
   weight tensor scales its transfer term. *)
let node_latency_pred t ~on id =
  let p = t.profiles.(id) in
  let k = t.slices.(id) in
  let wt_time =
    if p.Latency.wt_term <= 0. then 0.
    else if k = 1 then if on (Weight_of id) then 0. else p.Latency.wt_term
    else begin
      let off = ref 0 in
      for index = 0 to k - 1 do
        if not (on (Weight_slice { node = id; index; of_k = k })) then incr off
      done;
      p.Latency.wt_term *. float_of_int !off /. float_of_int k
    end
  in
  let if_time =
    List.fold_left
      (fun acc (v, seconds) -> if on (Feature_value v) then acc else acc +. seconds)
      0. p.Latency.if_terms
  in
  let of_time = if on (Feature_value id) then 0. else p.Latency.of_term in
  max p.Latency.latc (max if_time (max wt_time of_time))

(* The exact item set [node_latency_pred] queries for a node, in query
   order.  DNNK's compensation tables key their memo bits on this set,
   and warm-started workspaces rely on the order being a pure function
   of the metric — keep it in lockstep with [node_latency_pred]. *)
let iter_queried_items t id f =
  let p = t.profiles.(id) in
  let k = t.slices.(id) in
  if p.Latency.wt_term > 0. then begin
    if k = 1 then f (Weight_of id)
    else
      for index = 0 to k - 1 do
        f (Weight_slice { node = id; index; of_k = k })
      done
  end;
  List.iter (fun (v, _) -> f (Feature_value v)) p.Latency.if_terms;
  f (Feature_value id)

let node_latency t ~on_chip id =
  node_latency_pred t ~on:(fun item -> Item_set.mem item on_chip) id

let total_latency t ~on_chip =
  let sum = ref 0. in
  for id = 0 to Array.length t.profiles - 1 do
    sum := !sum +. node_latency t ~on_chip id
  done;
  !sum

let marginal_gain t ~on_chip item =
  let nodes = affected_nodes t item in
  let with_item = Item_set.add item on_chip in
  List.fold_left
    (fun acc id ->
      acc +. node_latency t ~on_chip id -. node_latency t ~on_chip:with_item id)
    0. nodes

let marginal_gain_many t ~on_chip items =
  let nodes =
    List.concat_map (affected_nodes t) items |> List.sort_uniq compare
  in
  let with_items =
    List.fold_left (fun acc it -> Item_set.add it acc) on_chip items
  in
  List.fold_left
    (fun acc id ->
      acc +. node_latency t ~on_chip id -. node_latency t ~on_chip:with_items id)
    0. nodes

(* Eq. 2 against the all-off-chip state: per affected node, the node's
   UMM latency minus its latency with only this item pinned. *)
let static_reduction t item = marginal_gain t ~on_chip:Item_set.empty item

let eligible_items t ~memory_bound_only =
  let memory_bound = Array.map Latency.is_memory_bound t.profiles in
  let qualifies item =
    (not memory_bound_only)
    || List.exists (fun id -> memory_bound.(id)) (affected_nodes t item)
  in
  let is_input v =
    match (G.node t.graph v).G.op with
    | Dnn_graph.Op.Input _ -> true
    | Dnn_graph.Op.Conv _ | Dnn_graph.Op.Pool _ | Dnn_graph.Op.Eltwise_add
    | Dnn_graph.Op.Concat | Dnn_graph.Op.Upsample _ | Dnn_graph.Op.Dense _ ->
      false
  in
  Hashtbl.fold
    (fun item _nodes acc ->
      let keep =
        match item with
        | Feature_value v ->
          (not (is_input v)) && Values.consumers t.graph v <> [] && qualifies item
        | Weight_of _ | Weight_slice _ -> qualifies item
      in
      if keep then item :: acc else acc)
    t.affected []
  |> List.sort compare

let pp_item ppf = function
  | Feature_value v -> Format.fprintf ppf "f%d" v
  | Weight_of n -> Format.fprintf ppf "w%d" n
  | Weight_slice { node; index; of_k } -> Format.fprintf ppf "w%d.%d/%d" node index of_k
