module G = Dnn_graph.Graph
module Latency = Accel.Latency
module Config = Accel.Config

let log_src = Logs.Src.create "lcmm.framework" ~doc:"LCMM framework passes"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  feature_reuse : bool;
  weight_prefetch : bool;
  buffer_splitting : bool;
  buffer_sharing : bool;
  memory_bound_only : bool;
  compensation : Dnnk.compensation;
  coloring : Coloring.strategy;
  capacity_override : int option;
  weight_slices : int;
  fusion : bool;
  channels : int;
}

let default_options =
  { feature_reuse = true;
    weight_prefetch = true;
    buffer_splitting = true;
    buffer_sharing = true;
    memory_bound_only = true;
    compensation = Dnnk.Table_approx;
    coloring = Coloring.Min_growth;
    capacity_override = None;
    weight_slices = 1;
    fusion = false;
    channels = 1 }

type pass_times = {
  liveness_us : float;
  interference_us : float;
  coloring_us : float;
  prefetch_us : float;
  dnnk_us : float;
  splitting_us : float;
  segmentation_us : float;
  channel_assign_us : float;
  schedule_us : float;
}

let zero_pass_times =
  { liveness_us = 0.;
    interference_us = 0.;
    coloring_us = 0.;
    prefetch_us = 0.;
    dnnk_us = 0.;
    splitting_us = 0.;
    segmentation_us = 0.;
    channel_assign_us = 0.;
    schedule_us = 0. }

let add_pass_times a b =
  { liveness_us = a.liveness_us +. b.liveness_us;
    interference_us = a.interference_us +. b.interference_us;
    coloring_us = a.coloring_us +. b.coloring_us;
    prefetch_us = a.prefetch_us +. b.prefetch_us;
    dnnk_us = a.dnnk_us +. b.dnnk_us;
    splitting_us = a.splitting_us +. b.splitting_us;
    segmentation_us = a.segmentation_us +. b.segmentation_us;
    channel_assign_us = a.channel_assign_us +. b.channel_assign_us;
    schedule_us = a.schedule_us +. b.schedule_us }

let pass_times_assoc t =
  [ ("liveness_us", t.liveness_us);
    ("interference_us", t.interference_us);
    ("coloring_us", t.coloring_us);
    ("prefetch_us", t.prefetch_us);
    ("dnnk_us", t.dnnk_us);
    ("splitting_us", t.splitting_us);
    ("segmentation_us", t.segmentation_us);
    ("channel_assign_us", t.channel_assign_us);
    ("schedule_us", t.schedule_us) ]

(* Process-wide cumulative per-pass wall clock, so long-running hosts
   (the plan service's stats op) can attribute planner time without
   tracking individual plans.  Worker domains plan concurrently. *)
let cumulative_mutex = Mutex.create ()
let cumulative_pass_times = ref zero_pass_times

let record_pass_times t =
  Mutex.lock cumulative_mutex;
  cumulative_pass_times := add_pass_times !cumulative_pass_times t;
  Mutex.unlock cumulative_mutex

let pass_times_total () =
  Mutex.lock cumulative_mutex;
  let t = !cumulative_pass_times in
  Mutex.unlock cumulative_mutex;
  t

let timed cell f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  cell := !cell +. ((Unix.gettimeofday () -. t0) *. 1e6);
  result

type plan = {
  config : Config.t;
  options : options;
  metric : Metric.t;
  vbufs : Vbuffer.t list;
  allocation : Dnnk.result;
  prefetch : Prefetch.t option;
  splitting_iterations : int;
  predicted_latency : float;
  pol : float;
  tensor_sram_bytes : int;
  channel_assignment : Channels.assignment option;
  pass_times : pass_times;
}

let is_weight_item = function
  | Metric.Weight_of _ | Metric.Weight_slice _ -> true
  | Metric.Feature_value _ -> false

(* Features and weights live in separate buffer pools and must never
   share a virtual buffer.  Expressed as a partition (rather than a
   pairwise predicate) so the interference build can fold it in with
   whole-row mask unions instead of a quadratic predicate sweep. *)
let never_share_class item = if is_weight_item item then 1 else 0

let unhidden_stalls prefetch on_chip =
  match prefetch with
  | None -> 0.
  | Some pdg ->
    Metric.Item_set.fold
      (fun item acc ->
        match item with
        | Metric.Weight_of n -> acc +. Prefetch.stall_seconds pdg n
        | Metric.Weight_slice { node; of_k; _ } ->
          (* A slice loads 1/k of the tensor; its share of the unhidden
             stall scales the same way. *)
          acc +. (Prefetch.stall_seconds pdg node /. float_of_int of_k)
        | Metric.Feature_value _ -> acc)
      on_chip 0.

let helped_and_bound metric on_chip =
  let profiles = metric.Metric.profiles in
  let helped = ref 0 and bound = ref 0 in
  Array.iter
    (fun p ->
      if Latency.is_memory_bound p then begin
        incr bound;
        let id = p.Latency.node_id in
        let now = Metric.node_latency metric ~on_chip id in
        if now < Latency.umm_node_latency p -. 1e-12 then incr helped
      end)
    profiles;
  (!helped, !bound)

(* Order-preserving parallel map over an array: contiguous chunks run
   as pool jobs, each returning its sub-array, concatenated in chunk
   order — the result is positionally identical to [Array.map]. *)
let par_map pool f arr =
  match pool with
  | None -> Array.map f arr
  | Some pool ->
    let n = Array.length arr in
    if n = 0 then [||]
    else begin
      let pieces = min n (4 * Pool.size pool) in
      let per = (n + pieces - 1) / pieces in
      let ranges =
        List.init pieces (fun p ->
            let lo = p * per in
            (lo, min per (n - lo)))
        |> List.filter (fun (_, len) -> len > 0)
      in
      let parts =
        Pool.map_list pool
          (fun (lo, len) -> Array.init len (fun i -> f arr.(lo + i)))
          ranges
      in
      Array.concat parts
    end

let plan ?(options = default_options) ?(stall_scale = 1.) ?pool config g =
  Log.info (fun m ->
      m "plan: %d nodes, %s, device %s" (G.node_count g)
        (Tensor.Dtype.to_string config.Config.dtype)
        config.Config.device.Fpga.Device.device_name);
  let profiles = Latency.profile_graph config g in
  (* Slices below the allocation block size only waste rounding; cap the
     per-node slice count so every slice spans at least one block. *)
  let metric =
    let dtype = config.Config.dtype in
    let weight_slices n =
      let bytes =
        match G.weight_shape g n with
        | None -> 0
        | Some shape -> Tensor.Shape.size_bytes dtype shape
      in
      max 1 (min options.weight_slices (bytes / Dnnk.block_bytes))
    in
    Metric.build ~weight_slices g profiles
  in
  let eligible =
    Metric.eligible_items metric ~memory_bound_only:options.memory_bound_only
    |> List.filter (fun item ->
           if is_weight_item item then options.weight_prefetch
           else options.feature_reuse)
  in
  let items = Array.of_list eligible in
  let dtype = config.Config.dtype in
  let sizes = Array.map (Metric.item_size_bytes dtype metric) items in
  (* Weight prefetching pass: PDG over the weight-eligible nodes, using
     the UMM per-node latencies as the schedule-time estimate. *)
  let weight_targets =
    Array.to_list items
    |> List.filter_map (function
         | Metric.Weight_of n | Metric.Weight_slice { node = n; _ } -> Some n
         | Metric.Feature_value _ -> None)
    |> List.sort_uniq compare
  in
  let liveness_us = ref 0. and interference_us = ref 0. in
  let coloring_us = ref 0. and prefetch_us = ref 0. in
  let dnnk_us = ref 0. and splitting_us = ref 0. in
  let pdg =
    if weight_targets = [] then None
    else
      timed prefetch_us (fun () ->
          Some
            (Prefetch.build metric ~targets:weight_targets
               ~node_latency:(fun id -> Latency.umm_node_latency profiles.(id))))
  in
  let prefetch_source n =
    match pdg with None -> None | Some p -> Prefetch.source_of p n
  in
  let intervals =
    timed liveness_us (fun () ->
        par_map pool (Liveness.item_interval g ~prefetch_source) items)
  in
  Log.info (fun m ->
      m "passes 1+2 (liveness, prefetch): %d eligible items, %d prefetch targets"
        (Array.length items)
        (List.length weight_targets));
  let interference =
    timed interference_us (fun () ->
        Interference.build ~never_share_class ~items ~intervals ())
  in
  let vbufs =
    timed coloring_us (fun () ->
        if options.buffer_sharing then
          Coloring.color ~strategy:options.coloring interference ~sizes
        else
          Array.to_list
            (Array.mapi
               (fun i item ->
                 Vbuffer.singleton ~vbuf_id:i item ~size_bytes:sizes.(i))
               items))
  in
  let capacity_bytes =
    let budget = Config.sram_budget_bytes config in
    match options.capacity_override with
    | None -> budget
    | Some cap -> min cap budget
  in
  Log.info (fun m ->
      m "pass 3 (DNNK): %d virtual buffers, capacity %.2f MB"
        (List.length vbufs)
        (float_of_int capacity_bytes /. 1e6));
  let workspace = Dnnk.workspace () in
  let initial =
    timed dnnk_us (fun () ->
        Dnnk.allocate ~compensation:options.compensation ~workspace ?pool
          metric ~capacity_bytes vbufs)
  in
  let allocation, splitting_iterations, vbufs =
    if options.buffer_splitting && options.buffer_sharing then begin
      let outcome =
        timed splitting_us (fun () ->
            Splitting.run ~compensation:options.compensation
              ~strategy:options.coloring ~workspace ?pool metric interference
              ~sizes ~capacity_bytes initial)
      in
      let final_vbufs =
        outcome.Splitting.result.Dnnk.chosen @ outcome.Splitting.result.Dnnk.spilled
      in
      (outcome.Splitting.result, outcome.Splitting.iterations, final_vbufs)
    end
    else (initial, 0, vbufs)
  in
  (* DNNK values weight pinning by its Eq. 1 reduction, but a pinned
     weight whose PDG source leaves too little headroom also costs its
     unhidden stall.  Prune chosen buffers whose stalls outweigh their
     benefit (whole buffers, keeping the sharing groups atomic).

     [stall_scale] is the plan↔schedule co-iteration's feedback: the
     runtime's schedule optimizer observes how much DDR contention
     inflates this tenant's transfers and replans with stalls scaled
     up accordingly, so marginally-hidden prefetches that contention
     exposes get pruned.  Multiplying by the default 1.0 is skipped
     outright so the standalone planning path stays bit-identical. *)
  let scaled s = if stall_scale = 1. then s else s *. stall_scale in
  let vbuf_stall vb =
    match pdg with
    | None -> 0.
    | Some p ->
      List.fold_left
        (fun acc item ->
          match item with
          | Metric.Weight_of n -> acc +. Prefetch.stall_seconds p n
          | Metric.Weight_slice { node; of_k; _ } ->
            acc +. (Prefetch.stall_seconds p node /. float_of_int of_k)
          | Metric.Feature_value _ -> acc)
        0. vb.Vbuffer.members
  in
  let rec prune (allocation : Dnnk.result) =
    let candidates =
      List.filter_map
        (fun vb ->
          let stall = scaled (vbuf_stall vb) in
          if stall <= 0. then None
          else
            let without =
              List.fold_left
                (fun acc it -> Metric.Item_set.remove it acc)
                allocation.Dnnk.on_chip vb.Vbuffer.members
            in
            let benefit =
              Metric.marginal_gain_many metric ~on_chip:without vb.Vbuffer.members
            in
            if stall > benefit +. 1e-15 then Some (stall -. benefit, vb, without)
            else None)
        allocation.Dnnk.chosen
    in
    match candidates with
    | [] -> allocation
    | first :: rest ->
      let _, worst, without =
        List.fold_left
          (fun ((bn, _, _) as best) ((n, _, _) as cand) ->
            if n > bn then cand else best)
          first rest
      in
      prune
        { allocation with
          Dnnk.chosen =
            List.filter
              (fun vb -> vb.Vbuffer.vbuf_id <> worst.Vbuffer.vbuf_id)
              allocation.Dnnk.chosen;
          spilled = worst :: allocation.Dnnk.spilled;
          on_chip = without;
          predicted_latency = Metric.total_latency metric ~on_chip:without;
          used_blocks =
            allocation.Dnnk.used_blocks
            - Dnnk.blocks_of_bytes worst.Vbuffer.size_bytes }
  in
  let allocation = prune allocation in
  (* Safety net: a plan must never lose to its own baseline.  Greedy
     pruning can in principle strand a jointly-bad group (gains are
     superadditive), so fall back to the empty allocation if the stall
     accounting still leaves the plan behind UMM. *)
  let allocation =
    let total =
      allocation.Dnnk.predicted_latency
      +. scaled (unhidden_stalls pdg allocation.Dnnk.on_chip)
    in
    if total > Latency.umm_total profiles +. 1e-15 then
      { allocation with
        Dnnk.chosen = [];
        spilled = allocation.Dnnk.chosen @ allocation.Dnnk.spilled;
        on_chip = Metric.Item_set.empty;
        predicted_latency = Latency.umm_total profiles;
        used_blocks = 0 }
    else allocation
  in
  let stalls = unhidden_stalls pdg allocation.Dnnk.on_chip in
  let helped, bound = helped_and_bound metric allocation.Dnnk.on_chip in
  Log.info (fun m ->
      m
        "plan done: %d buffers pinned (%d spilled), %d splitting iterations, \
         %.3f ms predicted, POL %d/%d"
        (List.length allocation.Dnnk.chosen)
        (List.length allocation.Dnnk.spilled)
        splitting_iterations
        ((allocation.Dnnk.predicted_latency +. stalls) *. 1e3)
        helped bound);
  (* Channel assignment (skipped entirely at 1 channel, where every
     stream trivially lands on channel 0 and the plan must stay
     byte-identical to the pre-channel planner). *)
  let channel_assign_us = ref 0. in
  let channel_assignment =
    if options.channels <= 1 then None
    else
      timed channel_assign_us (fun () ->
          Some
            (Channels.assign ~channels:options.channels metric
               ~on_chip:allocation.Dnnk.on_chip))
  in
  let pass_times =
    { liveness_us = !liveness_us;
      interference_us = !interference_us;
      coloring_us = !coloring_us;
      prefetch_us = !prefetch_us;
      dnnk_us = !dnnk_us;
      splitting_us = !splitting_us;
      segmentation_us = 0.;
      channel_assign_us = !channel_assign_us;
      schedule_us = 0. }
  in
  record_pass_times pass_times;
  { config;
    options;
    metric;
    vbufs;
    allocation;
    prefetch = pdg;
    splitting_iterations;
    predicted_latency = allocation.Dnnk.predicted_latency +. stalls;
    pol = (if bound = 0 then 1. else float_of_int helped /. float_of_int bound);
    tensor_sram_bytes = allocation.Dnnk.used_blocks * Dnnk.block_bytes;
    channel_assignment;
    pass_times }

let plan_partitioned ?(options = default_options) ?stall_scale ?pool
    ~capacity_bytes config g =
  if capacity_bytes < 0 then
    invalid_arg "Framework.plan_partitioned: negative capacity";
  plan ~options:{ options with capacity_override = Some capacity_bytes }
    ?stall_scale ?pool config g

(* Degraded-mode replanning for a board whose SRAM shrank under a live
   plan (bank loss).  Two steps, mirroring the paper's spill reasoning
   at runtime instead of compile time: first evict pinned virtual
   buffers by reverse benefit-density until the surviving capacity is
   respected (the emergency spill — what gets dumped to DDR right now),
   then re-solve the whole pipeline against the surviving capacity (the
   steady-state plan resumed from the current node). *)
type degraded = {
  evicted : Vbuffer.t list;
  evicted_bytes : int;
  post_eviction : Dnnk.result;
  replanned : plan;
}

let degrade ?pool ~surviving_bytes p g =
  if surviving_bytes < 0 then invalid_arg "Framework.degrade: negative capacity";
  let post_eviction, evicted =
    Dnnk.evict_to_capacity p.metric ~capacity_bytes:surviving_bytes p.allocation
  in
  let evicted_bytes =
    List.fold_left (fun acc vb -> acc + vb.Vbuffer.size_bytes) 0 evicted
  in
  Log.info (fun m ->
      m "degrade: capacity %.2f MB, evicted %d buffers (%.2f MB), replanning"
        (float_of_int surviving_bytes /. 1e6)
        (List.length evicted)
        (float_of_int evicted_bytes /. 1e6));
  let replanned =
    plan_partitioned ~options:p.options ?pool ~capacity_bytes:surviving_bytes
      p.config g
  in
  { evicted; evicted_bytes; post_eviction; replanned }

(* Canonical byte string of everything decision-relevant in a plan —
   buffers, membership, allocation, prefetch edges, objectives — with
   floats at full precision ([%.17g] round-trips every double) and
   wall-clock pass times deliberately excluded.  Two plans fingerprint
   equal iff the planner made identical decisions and identical float
   computations; the parallel-determinism property test digests this. *)
let fingerprint p =
  let b = Buffer.create 1024 in
  let f x = Buffer.add_string b (Printf.sprintf "%.17g;" x) in
  let i x = Buffer.add_string b (string_of_int x ^ ";") in
  let item it = Buffer.add_string b (Format.asprintf "%a," Metric.pp_item it) in
  let vbuf vb =
    i vb.Vbuffer.vbuf_id;
    i vb.Vbuffer.size_bytes;
    List.iter item vb.Vbuffer.members;
    Buffer.add_char b '|'
  in
  Buffer.add_string b "vbufs:";
  List.iter vbuf p.vbufs;
  Buffer.add_string b "chosen:";
  List.iter vbuf p.allocation.Dnnk.chosen;
  Buffer.add_string b "spilled:";
  List.iter vbuf p.allocation.Dnnk.spilled;
  Buffer.add_string b "alloc:";
  f p.allocation.Dnnk.predicted_latency;
  i p.allocation.Dnnk.capacity_blocks;
  i p.allocation.Dnnk.used_blocks;
  Buffer.add_string b "prefetch:";
  (match p.prefetch with
  | None -> Buffer.add_string b "none"
  | Some pdg ->
    List.iter
      (fun (e : Prefetch.edge) ->
        i e.Prefetch.source;
        i e.Prefetch.target;
        f e.Prefetch.load_seconds;
        f e.Prefetch.stall_seconds)
      (Prefetch.edges pdg));
  Buffer.add_string b ";plan:";
  i p.splitting_iterations;
  f p.predicted_latency;
  f p.pol;
  i p.tensor_sram_bytes;
  (* Appended only when present, so 1-channel plans fingerprint exactly
     as they did before channel assignment existed. *)
  (match p.channel_assignment with
  | None -> ()
  | Some a ->
    Buffer.add_string b ";channels:";
    i a.Channels.channels;
    Array.iter i a.Channels.wt_load_channel;
    Array.iter i a.Channels.wt_stream_channel;
    Array.iter i a.Channels.if_channel;
    Array.iter i a.Channels.of_channel;
    Array.iter f a.Channels.channel_bytes);
  Buffer.contents b

let latency p = p.predicted_latency

let throughput_tops p g =
  2. *. float_of_int (G.total_macs g) /. latency p /. 1e12

let helped_layers p = helped_and_bound p.metric p.allocation.Dnnk.on_chip

type design_report = {
  style_name : string;
  freq_mhz : float;
  latency_seconds : float;
  tops : float;
  dsp_util : float;
  clb_util : float;
  sram_util : float;
  bram_util : float;
  uram_util : float;
}

(* Map a design's memory onto physical blocks: tile buffers take BRAM
   first (they are many small banks), tensor buffers take URAM first
   (they are large contiguous buffers), each overflowing into the other. *)
let memory_blocks device ~tile_bytes ~tensor_bytes =
  let total = device.Fpga.Device.total in
  let bram_cap = total.Fpga.Resource.bram36 in
  let uram_cap = total.Fpga.Resource.uram in
  let tile_bram = (tile_bytes + Fpga.Resource.bram36_bytes - 1) / Fpga.Resource.bram36_bytes in
  let tile_bram = min tile_bram bram_cap in
  let tile_overflow_bytes = max 0 (tile_bytes - (tile_bram * Fpga.Resource.bram36_bytes)) in
  let tensor_uram =
    (tensor_bytes + Fpga.Resource.uram_bytes - 1) / Fpga.Resource.uram_bytes
    + (tile_overflow_bytes + Fpga.Resource.uram_bytes - 1) / Fpga.Resource.uram_bytes
  in
  let tensor_uram_clamped = min tensor_uram uram_cap in
  let overflow_bytes = (tensor_uram - tensor_uram_clamped) * Fpga.Resource.uram_bytes in
  let extra_bram = (overflow_bytes + Fpga.Resource.bram36_bytes - 1) / Fpga.Resource.bram36_bytes in
  (min bram_cap (tile_bram + extra_bram), tensor_uram_clamped)

let report ~style_name device config g ~latency_seconds ~tensor_bytes ~buffer_count =
  let total = device.Fpga.Device.total in
  let compute = Config.compute_resources config in
  let tile_bytes = Accel.Tiling.buffer_bytes config.Config.dtype config.Config.tile in
  let bram_used, uram_used = memory_blocks device ~tile_bytes ~tensor_bytes in
  let luts = compute.Fpga.Resource.luts + (2_000 * buffer_count) in
  let fr used cap = if cap = 0 then 0. else float_of_int used /. float_of_int cap in
  let sram_used_bytes =
    (bram_used * Fpga.Resource.bram36_bytes) + (uram_used * Fpga.Resource.uram_bytes)
  in
  { style_name;
    freq_mhz = config.Config.freq_mhz;
    latency_seconds;
    tops = 2. *. float_of_int (G.total_macs g) /. latency_seconds /. 1e12;
    dsp_util = fr compute.Fpga.Resource.dsp total.Fpga.Resource.dsp;
    clb_util = fr luts total.Fpga.Resource.luts;
    sram_util = fr sram_used_bytes (Fpga.Device.sram_bytes device);
    bram_util = fr bram_used total.Fpga.Resource.bram36;
    uram_util = fr uram_used total.Fpga.Resource.uram }

let report_of_plan ~style_name g p =
  report ~style_name p.config.Config.device p.config g
    ~latency_seconds:p.predicted_latency ~tensor_bytes:p.tensor_sram_bytes
    ~buffer_count:(List.length p.allocation.Dnnk.chosen)

type comparison = {
  model : string;
  dtype : Tensor.Dtype.t;
  umm : design_report;
  lcmm : design_report;
  lcmm_plan : plan;
  speedup : float;
}

let compare_designs ?options ?pool ?(device = Fpga.Device.vu9p) ~model dtype g =
  let umm_dse = Accel.Dse.run ~device ~style:Config.Umm dtype g in
  let lcmm_dse = Accel.Dse.run ~device ~style:Config.Lcmm dtype g in
  let lcmm_plan = plan ?options ?pool lcmm_dse.Accel.Dse.config g in
  let umm =
    report ~style_name:"UMM" device umm_dse.Accel.Dse.config g
      ~latency_seconds:umm_dse.Accel.Dse.umm_latency ~tensor_bytes:0 ~buffer_count:0
  in
  let lcmm = report_of_plan ~style_name:"LCMM" g lcmm_plan in
  { model;
    dtype;
    umm;
    lcmm;
    lcmm_plan;
    speedup = umm.latency_seconds /. lcmm.latency_seconds }
