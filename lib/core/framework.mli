(** The LCMM framework driver (paper Fig. 4).

    Runs the four passes in order on a design point: feature buffer reuse
    (liveness + coloring), weight buffer prefetching (PDG + coloring),
    DNNK allocation and buffer splitting; produces an allocation *plan*
    with the latency/resource accounting the paper's tables report. *)

type options = {
  feature_reuse : bool;      (** Consider feature tensors (section 3.1). *)
  weight_prefetch : bool;    (** Consider weight tensors (section 3.2). *)
  buffer_splitting : bool;   (** Run the splitting pass (section 3.4). *)
  buffer_sharing : bool;     (** Share buffers across disjoint lifespans;
                                 off = one buffer per tensor (ablation). *)
  memory_bound_only : bool;  (** Restrict items to memory-bound layers. *)
  compensation : Dnnk.compensation;
  coloring : Coloring.strategy;
  capacity_override : int option;
      (** Cap the tensor-buffer SRAM budget in bytes (embedded targets,
          sensitivity studies); [None] uses the design's full budget. *)
  weight_slices : int;
      (** Partial weight pinning granularity: split every weight tensor
          into this many channel-group slices, each an independent
          allocation item (1 = the paper's whole-tensor granularity). *)
  fusion : bool;
      (** Run the fused-layer / weight-streaming post-pass
          ({!Lcmm_fusion.Fusion} wraps plans when set).  Inert inside
          {!plan} itself — a fusion-off plan is byte-identical with the
          flag in either state — but carried on the plan so services,
          caches and fingerprints distinguish the two pipelines. *)
  channels : int;
      (** DDR channels to assign transfers over ({!Channels.assign}
          runs as a post-allocation pass when > 1).  1 — the default —
          skips the pass entirely: the plan, and its fingerprint, are
          byte-identical to the pre-channel planner. *)
}

val default_options : options
(** Everything on, [Table_approx] compensation, [Min_growth] coloring —
    the paper's configuration. *)

type pass_times = {
  liveness_us : float;
  interference_us : float;
  coloring_us : float;
  prefetch_us : float;
  dnnk_us : float;
  splitting_us : float;
  segmentation_us : float;
      (** The fusion segmentation pre-pass; 0 for base plans. *)
  channel_assign_us : float;
      (** The DDR channel-assignment pass; 0 at 1 channel. *)
  schedule_us : float;
      (** The runtime's DRAM schedule search; 0 for pure plans —
          {!Lcmm_runtime} records it via {!record_pass_times}. *)
}
(** Per-pass wall-clock microseconds for one planner run. *)

val zero_pass_times : pass_times
val add_pass_times : pass_times -> pass_times -> pass_times

val record_pass_times : pass_times -> unit
(** Fold one run's pass times into the process-wide cumulative clock —
    {!plan} calls this itself; external passes (fusion segmentation)
    call it to appear in {!pass_times_total}. *)

val pass_times_assoc : pass_times -> (string * float) list
(** Stable field-name/value pairs, for reports and the service stats. *)

val pass_times_total : unit -> pass_times
(** Process-wide cumulative per-pass wall clock across every plan run so
    far (all domains); the service's stats op reports it. *)

type plan = {
  config : Accel.Config.t;
  options : options;
  metric : Metric.t;
  vbufs : Vbuffer.t list;          (** All virtual buffers after sharing. *)
  allocation : Dnnk.result;
  prefetch : Prefetch.t option;    (** PDG, when weight prefetch ran. *)
  splitting_iterations : int;
  predicted_latency : float;       (** Eq. 1 total + unhidden prefetch stalls. *)
  pol : float;                     (** Fraction of memory-bound layers helped. *)
  tensor_sram_bytes : int;         (** SRAM granted to tensor buffers. *)
  channel_assignment : Channels.assignment option;
      (** DDR channel map for every stream, when [options.channels > 1]. *)
  pass_times : pass_times;         (** Wall-clock breakdown of this run. *)
}

val plan :
  ?options:options -> ?stall_scale:float -> ?pool:Pool.t -> Accel.Config.t ->
  Dnn_graph.Graph.t -> plan
(** Run LCMM for a fixed design point.  [pool] parallelizes the
    liveness scan and DNNK's per-row compensation analysis across
    domains; the resulting plan is byte-identical to the sequential one
    (parallel pieces fill disjoint, position-addressed slots — see
    {!fingerprint}).

    [stall_scale] (default 1.0) multiplies every unhidden prefetch
    stall in the post-DNNK prune and its UMM safety net — the
    plan↔schedule co-iteration's re-cost hook: the runtime observes how
    much DDR contention inflates a tenant's transfers and replans with
    stalls scaled up accordingly.  At the default 1.0 the scaling is
    skipped outright and the plan is bit-identical to one planned
    without the argument. *)

val plan_partitioned :
  ?options:options -> ?stall_scale:float -> ?pool:Pool.t ->
  capacity_bytes:int -> Accel.Config.t -> Dnn_graph.Graph.t -> plan
(** Run LCMM with the tensor-buffer budget capped at [capacity_bytes] —
    the multi-tenant runtime's entry point, compiling each tenant
    against its SRAM partition share rather than the whole board.
    Equivalent to [plan] with [capacity_override = Some capacity_bytes];
    raises [Invalid_argument] when the capacity is negative. *)

type degraded = {
  evicted : Vbuffer.t list;      (** Buffers spilled by the emergency pass. *)
  evicted_bytes : int;
  post_eviction : Dnnk.result;   (** Allocation after eviction alone. *)
  replanned : plan;              (** Full re-solve at the surviving capacity. *)
}

val degrade :
  ?pool:Pool.t -> surviving_bytes:int -> plan -> Dnn_graph.Graph.t -> degraded
(** Degraded-mode replanning for a plan whose SRAM shrank underneath it
    (bank loss).  First evicts pinned virtual buffers by reverse
    benefit-density ({!Dnnk.evict_to_capacity}) until [surviving_bytes]
    is respected — the emergency spill — then re-solves the whole
    pipeline via {!plan_partitioned} at the surviving capacity for the
    plan resumed from the current node.  Raises [Invalid_argument] on
    negative capacity. *)

val fingerprint : plan -> string
(** Canonical byte string of everything decision-relevant in the plan
    (buffers, allocation, prefetch edges, objectives at full float
    precision) with wall-clock pass times excluded: two plans
    fingerprint equal iff the planner made identical decisions and
    identical float computations.  Digest it (e.g.
    [Dnn_serial.Codec.digest_string]) for compact comparison. *)

val latency : plan -> float

val throughput_tops : plan -> Dnn_graph.Graph.t -> float
(** Effective Tops: [2 * total MACs / latency / 1e12]. *)

type design_report = {
  style_name : string;
  freq_mhz : float;
  latency_seconds : float;
  tops : float;
  dsp_util : float;
  clb_util : float;
  sram_util : float;
  bram_util : float;
  uram_util : float;
}

type comparison = {
  model : string;
  dtype : Tensor.Dtype.t;
  umm : design_report;
  lcmm : design_report;
  lcmm_plan : plan;
  speedup : float;
}

val compare_designs :
  ?options:options -> ?pool:Pool.t -> ?device:Fpga.Device.t -> model:string ->
  Tensor.Dtype.t -> Dnn_graph.Graph.t -> comparison
(** The paper's Table 1 experiment for one (model, precision) pair: DSE a
    UMM baseline and an LCMM design, run the framework on the latter and
    report both. *)

val report_of_plan : style_name:string -> Dnn_graph.Graph.t -> plan -> design_report

val helped_layers : plan -> int * int
(** [(helped, memory_bound)] — numerator/denominator of {!plan.pol}. *)
