type job = Job : (unit -> unit) -> job

exception Worker_crash of string

let src = Logs.Src.create "lcmm.pool" ~doc:"Worker pool"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  queue : job Queue.t;
  mutex : Mutex.t;
  wakeup : Condition.t;       (* signaled on enqueue and on shutdown *)
  mutable stopping : bool;
  mutable busy_count : int;
  mutable restart_count : int;
  mutable workers : unit Domain.t list;
  domain_count : int;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

(* Exceptions that kill the worker executing the job rather than being
   absorbed as an ordinary job failure.  The job's future is still
   completed (Failed) before the worker dies, so the awaiting client
   gets a structured error instead of a hang; the supervisor loop then
   restarts the worker. *)
let is_crash = function
  | Worker_crash _ | Stack_overflow | Out_of_memory -> true
  | _ -> false

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
        if t.stopping then None
        else begin
          Condition.wait t.wakeup t.mutex;
          next ()
        end
    in
    match next () with
    | None ->
      Mutex.unlock t.mutex;
      ()
    | Some (Job run) ->
      t.busy_count <- t.busy_count + 1;
      Mutex.unlock t.mutex;
      run ();
      Mutex.lock t.mutex;
      t.busy_count <- t.busy_count - 1;
      Mutex.unlock t.mutex;
      loop ()
  in
  loop ()

(* The supervisor: a crash escaping a job (see [is_crash]) unwinds
   [worker_loop] mid-job with [busy_count] still incremented.  Repair
   the counter, log, and re-enter the loop on the same domain — the
   worker is back in service for the next queued job. *)
let rec supervised_loop t () =
  match worker_loop t () with
  | () -> ()
  | exception e ->
    Mutex.lock t.mutex;
    t.busy_count <- t.busy_count - 1;
    t.restart_count <- t.restart_count + 1;
    let stopping = t.stopping in
    Mutex.unlock t.mutex;
    Log.err (fun m ->
        m "worker crashed (%s); restarting" (Printexc.to_string e));
    if not stopping then supervised_loop t ()

let create ?domains () =
  let domain_count =
    match domains with
    | Some n when n < 1 -> invalid_arg "Pool.create: domains must be >= 1"
    | Some n -> n
    | None -> max 1 (min 8 (Domain.recommended_domain_count () - 1))
  in
  let t =
    { queue = Queue.create ();
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      stopping = false;
      busy_count = 0;
      restart_count = 0;
      workers = [];
      domain_count }
  in
  t.workers <- List.init domain_count (fun _ -> Domain.spawn (supervised_loop t));
  t

let size t = t.domain_count

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  let run () =
    let outcome = try Done (f ()) with e -> Failed e in
    Mutex.lock fut.fm;
    fut.state <- outcome;
    Condition.broadcast fut.fc;
    Mutex.unlock fut.fm;
    (* Complete the future first, then let a crash take the worker
       down: the awaiting client is answered either way. *)
    match outcome with
    | Failed e when is_crash e -> raise e
    | _ -> ()
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job run) t.queue;
  Condition.signal t.wakeup;
  Mutex.unlock t.mutex;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let outcome = wait () in
  Mutex.unlock fut.fm;
  outcome

(* OCaml's [Condition] has no timed wait, so a bounded await polls the
   future state with exponential backoff (1 ms doubling to 50 ms) —
   coarse enough to cost nothing, fine enough that a deadline miss is
   reported within a twentieth of a second of the budget. *)
let await_within ~seconds fut =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait interval =
    Mutex.lock fut.fm;
    let state = fut.state in
    Mutex.unlock fut.fm;
    match state with
    | Done v -> Some (Ok v)
    | Failed e -> Some (Error e)
    | Pending ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Unix.sleepf (Float.min interval (Float.max 0. (deadline -. Unix.gettimeofday ())));
        wait (Float.min 0.05 (interval *. 2.))
      end
  in
  wait 0.001

let run t f =
  match await (submit t f) with Ok v -> v | Error e -> raise e

(* Steal one queued job and run it on the calling thread.  Jobs built by
   [submit] complete their future before re-raising a crash exception,
   so swallowing anything that escapes here is safe — the awaiting side
   still observes the structured failure. *)
let help_one t =
  Mutex.lock t.mutex;
  let job = Queue.take_opt t.queue in
  (match job with Some _ -> t.busy_count <- t.busy_count + 1 | None -> ());
  Mutex.unlock t.mutex;
  match job with
  | None -> false
  | Some (Job run) ->
    (try run () with _ -> ());
    Mutex.lock t.mutex;
    t.busy_count <- t.busy_count - 1;
    Mutex.unlock t.mutex;
    true

(* A helping parallel map: while its futures are pending the caller
   drains queued jobs instead of blocking.  This is what makes nested
   fan-out safe — a pool job that itself calls [map_list] keeps making
   progress even when every worker is busy with jobs that are all
   waiting on sub-jobs, because the sub-jobs get executed by their
   waiters.  Only when the queue is empty does the caller block on the
   future (its job is then necessarily running on another domain). *)
let map_list t f xs =
  let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map
    (fun fut ->
      let rec wait () =
        Mutex.lock fut.fm;
        let state = fut.state in
        Mutex.unlock fut.fm;
        match state with
        | Done v -> v
        | Failed e -> raise e
        | Pending ->
          if help_one t then wait ()
          else begin
            Mutex.lock fut.fm;
            let rec block () =
              match fut.state with
              | Pending ->
                Condition.wait fut.fc fut.fm;
                block ()
              | Done v -> Ok v
              | Failed e -> Error e
            in
            let outcome = block () in
            Mutex.unlock fut.fm;
            match outcome with Ok v -> v | Error e -> raise e
          end
      in
      wait ())
    futures

let busy t =
  Mutex.lock t.mutex;
  let n = t.busy_count in
  Mutex.unlock t.mutex;
  n

let queued t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let restarts t =
  Mutex.lock t.mutex;
  let n = t.restart_count in
  Mutex.unlock t.mutex;
  n

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.wakeup;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end
