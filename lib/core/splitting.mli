(** Buffer splitting (paper section 3.4).

    Sharing makes spilling coarse: if DNNK spills a virtual buffer, every
    tensor inside it goes to DDR, including small tensors with large
    latency reductions ("misspilling").  The pass repairs this greedily:
    take the largest spilled multi-member buffer, inject a false
    interference edge between its size-defining tensor and its next
    member, re-color and re-run DNNK; keep the result if the predicted
    latency improved and repeat until no improvement, no candidate, or
    the iteration bound. *)

type outcome = {
  result : Dnnk.result;
  iterations : int;       (** Splitting rounds actually applied. *)
  false_edges : int;      (** Edges injected in total. *)
  history : float list;
      (** Objective trajectory: the predicted latency of the initial
          allocation followed by each accepted re-run's, in order.
          Strictly decreasing by construction (the acceptance test
          requires an improvement beyond 1e-12). *)
  converged : bool;
      (** [true] when the loop stopped because no candidate improved
          (or none existed); [false] when it ran into
          [max_iterations]. *)
}

val run :
  ?max_iterations:int -> ?compensation:Dnnk.compensation ->
  ?strategy:Coloring.strategy -> ?workspace:Dnnk.workspace -> ?pool:Pool.t ->
  Metric.t -> Interference.t -> sizes:int array -> capacity_bytes:int ->
  Dnnk.result -> outcome
(** [run metric interference ~sizes ~capacity_bytes initial] improves on
    [initial] (the DNNK result for the current coloring of
    [interference]).  The interference graph is mutated (false edges
    accumulate).  [max_iterations] defaults to 16; [workspace] lets the
    re-allocation rounds warm-start from shared DNNK memos and DP
    arrays; [pool] is passed through to {!Dnnk.allocate}. *)
