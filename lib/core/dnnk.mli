(** DNNK — the DNN-knapsack on-chip memory allocator (paper Alg. 1).

    Virtual buffers are knapsack items: weight = buffer size in URAM-block
    granularity, value = the latency reduction its member tensors bring.
    Because per-node latency is a [max] over transfer terms, member values
    interact (pinning the second-largest term of a node buys nothing until
    the largest is pinned too); the paper handles this with *pivot
    compensation* against the DP memo.  Two variants are provided:

    - {!Table_approx} — the paper's scheme: the gain of adding a buffer at
      DP cell (i, j) is evaluated against the allocation bits the memo
      recorded for earlier buffers at the source column, exactly as
      Alg. 1's [pbuf_table] reads.  One DP pass.
    - {!Exact_iterative} — re-seeds a compensation-free DP with marginal
      gains measured against the previously chosen allocation and keeps
      the best exactly-evaluated result; converges in a few rounds and
      serves as the stronger reference in the ablation bench.

    Both variants process buffers in decreasing static-gain order (so the
    row memo sees a node's dominant terms first), take everything when
    the whole problem fits (pinning more never hurts), and finish with a
    greedy sweep-up that pulls back spilled buffers whose marginal gain
    became positive once their nodes' larger terms were pinned — value
    the max-structure hides from any single DP pass. *)

type compensation = Table_approx | Exact_iterative

type workspace
(** Scratch state shared across allocator calls: memoized per-buffer
    affected-node sets, static gains and compensation row state (the
    constants and gain tables of every virtual buffer the workspace has
    seen, keyed by member list), plus the DP arrays, which are cleared
    rather than reallocated on reuse.  The splitting loop re-runs the
    allocator many times over near-identical buffer sets and passes one
    workspace through all of them; rows whose earlier-owner dependency
    structure is unchanged warm-start from their cached tables, which
    is bit-exact because every cached float is a pure function of its
    memo-key bits.  A workspace is only valid against the metric it
    first ran with. *)

val workspace : unit -> workspace

type result = {
  chosen : Vbuffer.t list;       (** Buffers granted physical SRAM. *)
  spilled : Vbuffer.t list;      (** Buffers left in DDR. *)
  on_chip : Metric.Item_set.t;   (** Items of the chosen buffers. *)
  predicted_latency : float;     (** Exact Eq. 1 total for the result. *)
  capacity_blocks : int;
  used_blocks : int;
}

val block_bytes : int
(** Allocation granularity: one URAM block (32 KiB). *)

val blocks_of_bytes : int -> int
(** Size in whole blocks, rounding up. *)

val allocate :
  ?compensation:compensation -> ?rounds:int -> ?workspace:workspace ->
  ?pool:Pool.t -> Metric.t -> capacity_bytes:int -> Vbuffer.t list -> result
(** Run the allocator.  [rounds] (default 4) bounds {!Exact_iterative}
    refinement.  [workspace] (fresh by default) carries memos and DP
    arrays across repeated calls against the same metric; reusing one
    warm-starts unchanged compensation rows.  [pool] parallelizes the
    per-row constant analysis across domains (the result is
    byte-identical to the sequential run — rows fill disjoint,
    position-addressed slots).  Raises [Invalid_argument] on negative
    capacity. *)

val evict_to_capacity :
  Metric.t -> capacity_bytes:int -> result -> result * Vbuffer.t list
(** Degraded-mode eviction — the inverse of the knapsack.  When the
    capacity shrinks under a live allocation (an SRAM bank drops out),
    evict chosen buffers in increasing benefit-density order (marginal
    gain against the current set per occupied block) until the
    survivors fit [capacity_bytes].  Returns the shrunken result (with
    [capacity_blocks] updated) and the evicted buffers in eviction
    order.  Raises [Invalid_argument] on negative capacity. *)
