let plan_summary g plan =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let alloc = plan.Framework.allocation in
  let umm = Accel.Latency.umm_total plan.Framework.metric.Metric.profiles in
  add "design point : %s\n"
    (Format.asprintf "%a" Accel.Config.pp plan.Framework.config);
  add "virtual bufs : %d (%d on chip, %d spilled)\n"
    (List.length plan.Framework.vbufs)
    (List.length alloc.Dnnk.chosen)
    (List.length alloc.Dnnk.spilled);
  add "tensor SRAM  : %.2f MB in %d blocks\n"
    (float_of_int plan.Framework.tensor_sram_bytes /. 1e6)
    alloc.Dnnk.used_blocks;
  let helped, bound = Framework.helped_layers plan in
  add "POL          : %.0f%% (%d / %d memory-bound layers)\n"
    (100. *. plan.Framework.pol) helped bound;
  add "latency      : %.3f ms (UMM reference %.3f ms, x%.2f)\n"
    (plan.Framework.predicted_latency *. 1e3)
    (umm *. 1e3)
    (umm /. plan.Framework.predicted_latency);
  add "throughput   : %.3f Tops\n" (Framework.throughput_tops plan g);
  Buffer.contents buf

let comparison_header =
  Printf.sprintf "%-14s %-4s %10s %7s %10s %7s %6s %6s %6s %8s" "model" "prec"
    "umm_ms" "tops" "lcmm_ms" "tops" "dsp%" "clb%" "sram%" "speedup"

let comparison_row c =
  Printf.sprintf "%-14s %-4s %10.3f %7.3f %10.3f %7.3f %6.0f %6.0f %6.0f %8.2f"
    c.Framework.model
    (Tensor.Dtype.to_string c.Framework.dtype)
    (c.Framework.umm.Framework.latency_seconds *. 1e3)
    c.Framework.umm.Framework.tops
    (c.Framework.lcmm.Framework.latency_seconds *. 1e3)
    c.Framework.lcmm.Framework.tops
    (100. *. c.Framework.lcmm.Framework.dsp_util)
    (100. *. c.Framework.lcmm.Framework.clb_util)
    (100. *. c.Framework.lcmm.Framework.sram_util)
    c.Framework.speedup

(* CSV fields here never contain commas or quotes, so quoting is not
   needed; keep the writer trivial. *)
let csv_of_comparisons ?fusion_ms comparisons =
  let base_header =
    "model,precision,umm_ms,umm_tops,lcmm_ms,lcmm_tops,dsp_util,clb_util,sram_util,speedup"
  in
  (* The fusion column is appended after every pre-existing field, so
     consumers that index the original ten columns keep working. *)
  let header =
    match fusion_ms with
    | None -> base_header
    | Some _ -> base_header ^ ",fusion_ms"
  in
  let row c =
    let base =
      Printf.sprintf "%s,%s,%.6f,%.6f,%.6f,%.6f,%.4f,%.4f,%.4f,%.4f"
        c.Framework.model
        (Tensor.Dtype.to_string c.Framework.dtype)
        (c.Framework.umm.Framework.latency_seconds *. 1e3)
        c.Framework.umm.Framework.tops
        (c.Framework.lcmm.Framework.latency_seconds *. 1e3)
        c.Framework.lcmm.Framework.tops
        c.Framework.lcmm.Framework.dsp_util
        c.Framework.lcmm.Framework.clb_util
        c.Framework.lcmm.Framework.sram_util
        c.Framework.speedup
    in
    match fusion_ms with
    | None -> base
    | Some f -> (
      match f c with
      | Some ms -> Printf.sprintf "%s,%.6f" base ms
      | None -> base ^ ",")
  in
  String.concat "\n" (header :: List.map row comparisons) ^ "\n"

let csv_of_design_points points =
  let header = "mask,sram_bytes,latency_ms,tops" in
  let row p =
    Printf.sprintf "%d,%d,%.6f,%.6f" p.Design_space.mask p.Design_space.sram_bytes
      (p.Design_space.latency *. 1e3)
      p.Design_space.tops
  in
  String.concat "\n" (header :: List.map row points) ^ "\n"

let write_text_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
