(* Seeded transport-fault decisions for the tier's router->shard path.

   The decision machinery is [Fault.Injector]'s counter-based splitmix64
   draws: every action is a pure function of (spec seed, request key,
   attempt), where the key derives from the request's route digest and
   its occurrence number in the stream.  Wall-clock time, thread
   interleaving and shard identity never enter a draw, so the same
   request stream under the same spec replays the identical fault
   sequence — the property the chaos bench's reproducibility gate
   checks.

   Only digest-addressed request traffic draws faults: health probes,
   stats broadcasts and drain flushes carry no chaos key and pass
   untouched (they measure or repair real state; faulting them would
   couple recovery speed to the fault schedule). *)

module Spec = Fault.Spec
module Injector = Fault.Injector

type counters = {
  mutable delays : int;
  mutable hangs : int;
  mutable truncs : int;
  mutable corrupts : int;
  mutable resets : int;
  mutable slowed : int;
}

type t = {
  spec : Spec.t;
  inj : Injector.t;
  seqs : (string, int) Hashtbl.t; (* digest -> occurrences so far *)
  mutex : Mutex.t;
  c : counters;
}

let create spec =
  if not (Spec.has_transport_faults spec) then None
  else
    Some
      { spec;
        inj = Injector.create spec;
        seqs = Hashtbl.create 64;
        mutex = Mutex.create ();
        c =
          { delays = 0; hangs = 0; truncs = 0; corrupts = 0; resets = 0;
            slowed = 0 } }

let spec t = t.spec

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let hex_value = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> 0

(* The chaos key for the next occurrence of [digest]: 48 bits of the
   digest folded with the occurrence number.  The injector finalises
   the key through splitmix64, so this only has to separate requests,
   not mix them. *)
let key t ~digest =
  with_lock t (fun () ->
      let n =
        match Hashtbl.find_opt t.seqs digest with Some n -> n | None -> 0
      in
      Hashtbl.replace t.seqs digest (n + 1);
      let base = ref 0 in
      String.iteri
        (fun i c -> if i < 12 then base := (!base * 16) + hex_value c)
        digest;
      (!base * 1_000_003) + n)

(* The action for attempt [attempt] of request [key]; counted at draw
   time so the counters are as deterministic as the draws. *)
let action t ~key ~attempt =
  let act = Injector.transport_action t.inj ~key ~attempt in
  (match act with
  | Injector.Pass -> ()
  | Injector.Delay _ -> with_lock t (fun () -> t.c.delays <- t.c.delays + 1)
  | Injector.Hang -> with_lock t (fun () -> t.c.hangs <- t.c.hangs + 1)
  | Injector.Trunc -> with_lock t (fun () -> t.c.truncs <- t.c.truncs + 1)
  | Injector.Corrupt ->
    with_lock t (fun () -> t.c.corrupts <- t.c.corrupts + 1)
  | Injector.Reset -> with_lock t (fun () -> t.c.resets <- t.c.resets + 1));
  act

let mangle t ~key ~attempt ~action line =
  Injector.mangle_line t.inj ~key ~attempt ~action line

let slow_factor t ~shard =
  let f = Injector.slow_factor t.inj ~shard in
  if f > 1. then with_lock t (fun () -> t.c.slowed <- t.c.slowed + 1);
  f

let counter_list t =
  with_lock t (fun () ->
      [ ("injected_delays", t.c.delays);
        ("injected_hangs", t.c.hangs);
        ("injected_truncs", t.c.truncs);
        ("injected_corrupts", t.c.corrupts);
        ("injected_resets", t.c.resets);
        ("slowed_calls", t.c.slowed) ])

let counters_json t =
  Dnn_serial.Json.Obj
    (("spec", Dnn_serial.Json.String (Spec.to_string t.spec))
    :: List.map (fun (k, v) -> (k, Dnn_serial.Json.Int v)) (counter_list t))
