let src = Logs.Src.create "lcmm.tier" ~doc:"Sharded plan-compilation tier"

module Log = (val Logs.src_log src : Logs.LOG)
module Json = Dnn_serial.Json
module Wire = Dnn_serial.Wire
module P = Lcmm_service.Protocol
module Engine = Lcmm_service.Engine
module Lru = Lcmm_service.Lru

type counters = {
  mutable requests : int;  (* leaf requests routed by digest *)
  mutable router_hits : int;  (* answered from the front LRU *)
  mutable shard_hits : int;  (* answered by the owner's cache probe *)
  mutable peer_probes : int;  (* cache_get probes sent to non-owners *)
  mutable peer_fills : int;  (* misses answered by a sibling's cache *)
  mutable computes : int;  (* requests forwarded for actual compute *)
  mutable shed : int;  (* rejected with a structured overload error *)
  mutable errors : int;  (* error responses of any other kind *)
}

type t = {
  ring : Ring.t;
  by_name : (string, Shard.t) Hashtbl.t;
  shards : Shard.t list;  (* ring order of [Ring.shards] *)
  lru : Json.t Lru.t;
  mutex : Mutex.t;
  timing : bool;
  deadline_ms : float option;
  c : counters;
}

let create ?(router_cache_entries = 512) ?(router_cache_mb = 64)
    ?deadline_ms ?(timing = true) ~ring ~shards () =
  let by_name = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace by_name (Shard.name s) s) shards;
  let shards =
    List.map
      (fun name ->
        match Hashtbl.find_opt by_name name with
        | Some s -> s
        | None -> invalid_arg ("Tier.create: no shard named " ^ name))
      (Ring.shards ring)
  in
  { ring;
    by_name;
    shards;
    lru =
      Lru.create ~max_entries:router_cache_entries
        ~max_bytes:(router_cache_mb * 1024 * 1024);
    mutex = Mutex.create ();
    timing;
    deadline_ms;
    c =
      { requests = 0;
        router_hits = 0;
        shard_hits = 0;
        peer_probes = 0;
        peer_fills = 0;
        computes = 0;
        shed = 0;
        errors = 0 } }

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let count t bump = with_lock t (fun () -> bump t.c)

let shard t name = Hashtbl.find t.by_name name

let lru_find t digest = with_lock t (fun () -> Lru.find t.lru digest)

let lru_store t digest payload =
  with_lock t (fun () ->
      ignore
        (Lru.add t.lru ~key:digest
           ~bytes:(String.length (Json.to_string payload))
           payload))

(* --- response rendering --- *)

(* The tier's stdio/socket output must be byte-identical to a
   single-process [lcmm serve] answering the same request: with timing
   off both render [Wire.ok ?id ~op payload] from the same [Json]
   payload (the codec round-trips renderings exactly), and error
   messages pass through verbatim with their kind re-derived from the
   same stable prefixes. *)

let render_ok t (env : P.envelope) ?cache ~t0 payload =
  let cache = if t.timing then cache else None in
  let elapsed_ms =
    if t.timing then Some ((Unix.gettimeofday () -. t0) *. 1e3) else None
  in
  Wire.ok ?id:env.P.id ~op:(P.op_name env.P.request) ?cache ?elapsed_ms payload

let render_error t (env : P.envelope) msg =
  count t (fun c ->
      if Engine.error_kind msg = Some "overloaded" then c.shed <- c.shed + 1
      else c.errors <- c.errors + 1);
  Wire.error ?id:env.P.id
    ~op:(P.op_name env.P.request)
    ?kind:(Engine.error_kind msg) msg

(* --- talking to shards --- *)

(* One-line request documents for the cache plane. *)
let cache_get_line digest =
  Json.to_string (Json.Obj [ ("op", Json.String "cache_get");
                             ("digest", Json.String digest) ])

let cache_put_line digest payload =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "cache_put"); ("digest", Json.String digest);
         ("payload", payload) ])

(* Split a shard's NDJSON response into the engine's outcome. *)
let parse_response line =
  match Json.of_string line with
  | Error msg -> Error ("internal: shard response unparsable: " ^ msg)
  | Ok doc -> (
    match Json.member_opt "ok" doc with
    | Some (Json.Bool true) -> (
      match Json.member_opt "result" doc with
      | Some payload -> Ok (Ok payload)
      | None -> Error "internal: shard response missing result")
    | Some (Json.Bool false) -> (
      match Json.member_opt "error" doc with
      | Some (Json.String msg) -> Ok (Error msg)
      | _ -> Error "internal: shard response missing error")
    | _ -> Error "internal: shard response missing ok field")

(* Probe one shard's cache for a digest.  [`Hit payload] on success,
   [`Miss] when the shard answered but had nothing (or answered
   garbage), [`Down] when it could not be reached at all,
   [`Overloaded msg] when its in-flight gate shed the probe — the
   caller must shed the request rather than fail over, or overload on
   one shard would amplify onto the survivors. *)
let probe_cache s digest =
  match Shard.call s (cache_get_line digest) with
  | Error (Shard.Overloaded msg) -> `Overloaded msg
  | Error (Shard.Unavailable _ | Shard.Transport _) -> `Down
  | Ok line -> (
    match parse_response line with
    | Ok (Ok payload) -> `Hit payload
    | Ok (Error _) | Error _ -> `Miss)

(* Best-effort: seed the owner's cache with a payload found elsewhere so
   the next probe for this digest hits locally. *)
let backfill owner digest payload =
  match Shard.call owner (cache_put_line digest payload) with
  | Ok _ -> ()
  | Error e ->
    Log.warn (fun m ->
        m "peer backfill of %s into %s failed: %s" digest (Shard.name owner)
          (Shard.error_message e))

let forward_line t (env : P.envelope) =
  let env =
    match env.P.deadline_ms with
    | Some _ -> env
    | None -> { env with P.deadline_ms = t.deadline_ms }
  in
  Json.to_string (P.envelope_to_json env)

(* --- the routing flow --- *)

(* Answer a digest-addressed leaf request: front LRU, then the owner's
   cache, then the sibling caches (peer fill), then compute on the
   owner.  An unreachable owner fails over to the next shard in ring
   order; an overloaded owner sheds the request instead — backpressure
   must push load back to the client, not amplify it onto the survivors. *)
let route t (env : P.envelope) digest =
  let t0 = Unix.gettimeofday () in
  count t (fun c -> c.requests <- c.requests + 1);
  match lru_find t digest with
  | Some payload ->
    count t (fun c -> c.router_hits <- c.router_hits + 1);
    render_ok t env ~cache:"hit" ~t0 payload
  | None -> (
    let owners = Ring.successors t.ring digest in
    let peers_of owner =
      List.filter (fun n -> n <> Shard.name owner) owners
    in
    let peer_fill owner =
      let rec probe = function
        | [] -> None
        | name :: rest -> (
          count t (fun c -> c.peer_probes <- c.peer_probes + 1);
          match probe_cache (shard t name) digest with
          | `Hit payload -> Some payload
          (* A busy peer just doesn't help with this fill. *)
          | `Miss | `Down | `Overloaded _ -> probe rest)
      in
      match probe (peers_of owner) with
      | None -> None
      | Some payload ->
        count t (fun c -> c.peer_fills <- c.peer_fills + 1);
        backfill owner digest payload;
        Some payload
    in
    let compute owner retry_names =
      count t (fun c -> c.computes <- c.computes + 1);
      let rec on candidates =
        match candidates with
        | [] ->
          render_error t env
            "unavailable: no shard could take the request"
        | s :: rest -> (
          match Shard.call s (forward_line t env) with
          | Ok line -> (
            match parse_response line with
            | Ok (Ok payload) ->
              lru_store t digest payload;
              render_ok t env ~cache:"miss" ~t0 payload
            | Ok (Error msg) -> render_error t env msg
            | Error msg -> render_error t env msg)
          | Error (Shard.Overloaded msg) -> render_error t env msg
          | Error (Shard.Unavailable msg | Shard.Transport msg) ->
            Log.warn (fun m ->
                m "compute on %s failed (%s); trying next shard"
                  (Shard.name s) msg);
            on rest)
      in
      on (owner :: List.map (shard t) retry_names)
    in
    let rec from_owner = function
      | [] ->
        render_error t env "unavailable: no shard could take the request"
      | owner_name :: fallbacks -> (
        let owner = shard t owner_name in
        match probe_cache owner digest with
        | `Hit payload ->
          count t (fun c -> c.shard_hits <- c.shard_hits + 1);
          lru_store t digest payload;
          render_ok t env ~cache:"hit" ~t0 payload
        | `Miss -> (
          match peer_fill owner with
          | Some payload ->
            lru_store t digest payload;
            render_ok t env ~cache:"peer" ~t0 payload
          | None -> (
            match env.P.request with
            | P.Cache_get _ ->
              (* Nothing to compute: the probe is the request. *)
              render_error t env (Printf.sprintf "not cached: %s" digest)
            | _ -> compute owner fallbacks))
        | `Overloaded msg ->
          (* Backpressure, not failover: the owner is alive but full. *)
          render_error t env msg
        | `Down ->
          (* The owner is unreachable for probes too; the next shard in
             ring order takes over wholesale. *)
          from_owner fallbacks)
    in
    match env.P.request with
    | P.Cache_put (_, payload) ->
      lru_store t digest payload;
      let owner = shard t (Ring.lookup t.ring digest) in
      (match Shard.call owner (forward_line t env) with
      | Ok line -> (
        match parse_response line with
        | Ok (Ok payload) -> render_ok t env ~t0 payload
        | Ok (Error msg) | Error msg -> render_error t env msg)
      | Error e -> render_error t env (Shard.error_message e))
    | _ -> from_owner owners)

(* Requests with no digest (models) go to the first shard that answers. *)
let forward_any t (env : P.envelope) =
  let t0 = Unix.gettimeofday () in
  let rec on = function
    | [] ->
      render_error t env "unavailable: no shard could take the request"
    | s :: rest -> (
      match Shard.call s (forward_line t env) with
      | Ok line -> (
        match parse_response line with
        | Ok (Ok payload) -> render_ok t env ~t0 payload
        | Ok (Error msg) -> render_error t env msg
        | Error msg -> render_error t env msg)
      | Error _ -> on rest)
  in
  on t.shards

(* --- aggregated stats --- *)

let counters_json t =
  with_lock t (fun () ->
      Json.Obj
        [ ("requests", Json.Int t.c.requests);
          ("router_hits", Json.Int t.c.router_hits);
          ("shard_hits", Json.Int t.c.shard_hits);
          ("peer_probes", Json.Int t.c.peer_probes);
          ("peer_fills", Json.Int t.c.peer_fills);
          ("computes", Json.Int t.c.computes);
          ("shed", Json.Int t.c.shed);
          ("errors", Json.Int t.c.errors);
          ( "router_cache",
            Json.Obj
              [ ("entries", Json.Int (Lru.length t.lru));
                ("bytes", Json.Int (Lru.total_bytes t.lru)) ] );
          ( "ring",
            Json.Obj
              [ ("shards", Json.Int (List.length t.shards));
                ("vnodes", Json.Int (Ring.vnodes t.ring)) ] ) ])

let stats_payload t =
  let shard_stats =
    List.map
      (fun s ->
        let remote =
          match Shard.call s (Json.to_string (Json.Obj [ ("op", Json.String "stats") ])) with
          | Ok line -> (
            match parse_response line with
            | Ok (Ok payload) -> payload
            | Ok (Error _) | Error _ -> Json.Null)
          | Error _ -> Json.Null
        in
        (Shard.name s, Shard.stats_json s, remote))
      t.shards
  in
  (* Fleet-wide cache totals, summed over whichever shards answered. *)
  let cache_total field =
    List.fold_left
      (fun acc (_, _, remote) ->
        match Json.member_opt "cache" remote with
        | Some cache -> (
          match Json.member_opt field cache with
          | Some (Json.Int n) -> acc + n
          | _ -> acc)
        | None -> acc)
      0 shard_stats
  in
  Json.Obj
    [ ("tier", counters_json t);
      ( "aggregate",
        Json.Obj
          [ ("cache_hits", Json.Int (cache_total "hits"));
            ("cache_misses", Json.Int (cache_total "misses"));
            ("cache_entries", Json.Int (cache_total "entries"));
            ("cache_bytes", Json.Int (cache_total "bytes")) ] );
      ( "shards",
        Json.List
          (List.map
             (fun (name, health, remote) ->
               Json.Obj
                 [ ("name", Json.String name); ("health", health);
                   ("stats", remote) ])
             shard_stats) ) ]

(* --- entry points --- *)

let rec respond t (env : P.envelope) =
  match env.P.request with
  | P.Batch subs ->
    let t0 = Unix.gettimeofday () in
    let docs = List.map (respond t) subs in
    render_ok t env ~t0 (Json.List docs)
  | P.Stats ->
    let t0 = Unix.gettimeofday () in
    render_ok t env ~t0 (stats_payload t)
  | _ -> (
    match Engine.route_digest env.P.request with
    | Error msg -> render_error t env msg
    | Ok (Some digest) -> route t env digest
    | Ok None -> forward_any t env)

let handle_line t line =
  if String.length line > Engine.max_line_bytes then
    Wire.to_line
      (Wire.error ~op:"parse"
         (Printf.sprintf "request exceeds %d bytes" Engine.max_line_bytes))
  else
    match P.request_of_line line with
    | Error msg ->
      Wire.to_line (Wire.error ~op:"parse" msg)
    | Ok env -> (
      match respond t env with
      | doc -> Wire.to_line doc
      | exception e ->
        Log.err (fun m -> m "tier dispatch raised: %s" (Printexc.to_string e));
        Wire.to_line
          (Wire.error ?id:env.P.id
             ~op:(P.op_name env.P.request)
             ~kind:"internal"
             ("internal: " ^ Printexc.to_string e)))

let shards t = t.shards

let shutdown t = List.iter Shard.stop t.shards
