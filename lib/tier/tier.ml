let src = Logs.Src.create "lcmm.tier" ~doc:"Sharded plan-compilation tier"

module Log = (val Logs.src_log src : Logs.LOG)
module Json = Dnn_serial.Json
module Wire = Dnn_serial.Wire
module P = Lcmm_service.Protocol
module Engine = Lcmm_service.Engine
module Lru = Lcmm_service.Lru
module Metrics = Lcmm_service.Metrics

type counters = {
  mutable requests : int;  (* leaf requests routed by digest *)
  mutable router_hits : int;  (* answered from the front LRU *)
  mutable shard_hits : int;  (* answered by the owner's cache probe *)
  mutable peer_probes : int;  (* cache_get probes sent to non-owners *)
  mutable peer_fills : int;  (* misses answered by a sibling's cache *)
  mutable computes : int;  (* requests forwarded for actual compute *)
  mutable shed : int;  (* rejected with a structured overload error *)
  mutable errors : int;  (* error responses of any other kind *)
  mutable retries : int;  (* compute attempts re-sent after a failure *)
  mutable hedges : int;  (* hedge requests launched *)
  mutable hedge_wins : int;  (* hedges whose reply beat the primary *)
  mutable invalid : int;  (* replies rejected by integrity validation *)
  mutable deadline : int;  (* requests expired inside the router *)
  mutable flushed : int;  (* entries pushed to owners by the drain flush *)
}

type t = {
  ring : Ring.t;
  by_name : (string, Shard.t) Hashtbl.t;
  shards : Shard.t list;  (* ring order of [Ring.shards] *)
  lru : Json.t Lru.t;
  mutex : Mutex.t;
  timing : bool;
  deadline_ms : float option;
  retries : int;
  retry_backoff_s : float;
  hedge_s : float option;  (* fixed hedge threshold *)
  hedge_quantile : float option;  (* adaptive threshold off the reservoir *)
  call_timeout_s : float option;
  reservoir : Metrics.Reservoir.t;  (* compute-call latencies, seconds *)
  mutable chaos : Chaos.t option;
  mutable draining : bool;
  mutable inflight : int;
  mutable stop_prober : bool;
  mutable prober : Thread.t option;
  c : counters;
}

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let count t bump = with_lock t (fun () -> bump t.c)

let shard t name = Hashtbl.find t.by_name name

(* The background prober gives failed shards a way back to [`Up]
   between requests: passive recovery needs live traffic to hit the
   half-open circuit, which a drained or lightly loaded tier may never
   send.  Only non-[`Up] shards are probed — healthy shards prove
   themselves on every call. *)
let prober_loop t interval_s () =
  let rec sleep remaining =
    if remaining > 0. && not t.stop_prober then begin
      Unix.sleepf (Float.min 0.05 remaining);
      sleep (remaining -. 0.05)
    end
  in
  while not t.stop_prober do
    sleep interval_s;
    if not t.stop_prober then
      List.iter
        (fun s ->
          if Shard.state s <> `Up then begin
            let recovered = Shard.probe ?timeout_s:t.call_timeout_s s in
            Log.debug (fun m ->
                m "probe %s -> %s" (Shard.name s)
                  (if recovered then "recovered" else "still failing"))
          end)
        t.shards
  done

let create ?(router_cache_entries = 512) ?(router_cache_mb = 64)
    ?deadline_ms ?(timing = true) ?(retries = 0) ?(retry_backoff_ms = 25.)
    ?hedge_ms ?hedge_quantile ?call_timeout_ms ?probe_interval_ms ?chaos
    ~ring ~shards () =
  if retries < 0 then invalid_arg "Tier.create: retries must be >= 0";
  if retry_backoff_ms < 0. then
    invalid_arg "Tier.create: retry_backoff_ms must be >= 0";
  Option.iter
    (fun q ->
      if q <= 0. || q >= 1. then
        invalid_arg "Tier.create: hedge_quantile must be in (0, 1)")
    hedge_quantile;
  Option.iter
    (fun ms ->
      if ms <= 0. then invalid_arg "Tier.create: hedge_ms must be positive")
    hedge_ms;
  Option.iter
    (fun ms ->
      if ms <= 0. then
        invalid_arg "Tier.create: call_timeout_ms must be positive")
    call_timeout_ms;
  let by_name = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace by_name (Shard.name s) s) shards;
  let shards =
    List.map
      (fun name ->
        match Hashtbl.find_opt by_name name with
        | Some s -> s
        | None -> invalid_arg ("Tier.create: no shard named " ^ name))
      (Ring.shards ring)
  in
  let t =
    { ring;
      by_name;
      shards;
      lru =
        Lru.create ~max_entries:router_cache_entries
          ~max_bytes:(router_cache_mb * 1024 * 1024);
      mutex = Mutex.create ();
      timing;
      deadline_ms;
      retries;
      retry_backoff_s = retry_backoff_ms /. 1e3;
      hedge_s = Option.map (fun ms -> ms /. 1e3) hedge_ms;
      hedge_quantile;
      call_timeout_s = Option.map (fun ms -> ms /. 1e3) call_timeout_ms;
      reservoir = Metrics.Reservoir.create ~capacity:512 ~seed:1 ();
      chaos;
      draining = false;
      inflight = 0;
      stop_prober = false;
      prober = None;
      c =
        { requests = 0;
          router_hits = 0;
          shard_hits = 0;
          peer_probes = 0;
          peer_fills = 0;
          computes = 0;
          shed = 0;
          errors = 0;
          retries = 0;
          hedges = 0;
          hedge_wins = 0;
          invalid = 0;
          deadline = 0;
          flushed = 0 } }
  in
  (match probe_interval_ms with
  | None -> ()
  | Some ms ->
    if ms <= 0. then
      invalid_arg "Tier.create: probe_interval_ms must be positive";
    t.prober <- Some (Thread.create (prober_loop t (ms /. 1e3)) ()));
  t

let set_chaos t chaos = with_lock t (fun () -> t.chaos <- chaos)

let chaos t = with_lock t (fun () -> t.chaos)

let lru_find t digest = with_lock t (fun () -> Lru.find t.lru digest)

let lru_store t digest payload =
  with_lock t (fun () ->
      ignore
        (Lru.add t.lru ~key:digest
           ~bytes:(String.length (Json.to_string payload))
           payload))

(* --- response rendering --- *)

(* The tier's stdio/socket output must be byte-identical to a
   single-process [lcmm serve] answering the same request: with timing
   off both render [Wire.ok ?id ~op payload] from the same [Json]
   payload (the codec round-trips renderings exactly), and error
   messages pass through verbatim with their kind re-derived from the
   same stable prefixes.  The router->shard hop may decorate the
   forwarded envelope (integrity digest, remaining deadline) because
   the response the client sees is re-rendered here from the payload,
   never relayed. *)

let render_ok t (env : P.envelope) ?cache ~t0 payload =
  let cache = if t.timing then cache else None in
  let elapsed_ms =
    if t.timing then Some ((Unix.gettimeofday () -. t0) *. 1e3) else None
  in
  Wire.ok ?id:env.P.id ~op:(P.op_name env.P.request) ?cache ?elapsed_ms payload

let render_error t (env : P.envelope) msg =
  count t (fun c ->
      match Engine.error_kind msg with
      | Some "overloaded" -> c.shed <- c.shed + 1
      | Some "deadline" ->
        c.deadline <- c.deadline + 1;
        c.errors <- c.errors + 1
      | _ -> c.errors <- c.errors + 1);
  Wire.error ?id:env.P.id
    ~op:(P.op_name env.P.request)
    ?kind:(Engine.error_kind msg) msg

(* --- talking to shards --- *)

(* One-line request documents for the cache plane.  They carry the
   digest as [id] and ask for a [sum] so the router can validate the
   reply end to end — a corrupted cache hit must never be cached or
   served. *)
let cache_get_line digest =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "cache_get"); ("digest", Json.String digest);
         ("id", Json.String digest); ("checksum", Json.Bool true) ])

let cache_put_line digest payload =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "cache_put"); ("digest", Json.String digest);
         ("payload", payload) ])

(* The forwarded copy of a routed envelope: the route digest rides as
   [id] (so the reply provably answers this request), [checksum]
   requests the integrity digest, and the deadline becomes the budget
   remaining *now* — the shard must not spend time the router already
   burned on probes, backoff or earlier attempts. *)
let forward_line t (env : P.envelope) ~digest ~remaining_ms =
  let deadline_ms =
    match remaining_ms with
    | Some _ -> remaining_ms
    | None -> t.deadline_ms
  in
  let env =
    { env with
      P.id = Some (Json.String digest);
      P.checksum = true;
      P.deadline_ms }
  in
  Json.to_string (P.envelope_to_json env)

(* Split a shard's NDJSON response into the engine's outcome. *)
let parse_response line =
  match Json.of_string line with
  | Error msg -> Error ("internal: shard response unparsable: " ^ msg)
  | Ok doc -> (
    match Json.member_opt "ok" doc with
    | Some (Json.Bool true) -> (
      match Json.member_opt "result" doc with
      | Some payload -> Ok (Ok payload)
      | None -> Error "internal: shard response missing result")
    | Some (Json.Bool false) -> (
      match Json.member_opt "error" doc with
      | Some (Json.String msg) -> Ok (Error msg)
      | _ -> Error "internal: shard response missing error")
    | _ -> Error "internal: shard response missing ok field")

(* --- the chaos-interposed physical call --- *)

(* Attempt numbers distinguish the draws of one request's physical
   calls (probe, compute, retries, hedges).  They are taken from a
   request-local counter *before* a call launches, so a hedge race
   assigns primary/hedge numbers deterministically regardless of which
   thread runs first. *)
type call_ctx = { ckey : int option; next_attempt : int ref }

let make_ctx t ~digest =
  match with_lock t (fun () -> t.chaos) with
  | None -> { ckey = None; next_attempt = ref 0 }
  | Some ch ->
    { ckey = Some (Chaos.key ch ~digest); next_attempt = ref 0 }

let take_attempt ctx =
  let n = !(ctx.next_attempt) in
  ctx.next_attempt := n + 1;
  n

let shard_index t s = Ring.position t.ring (Shard.name s)

(* One physical call to [s] with the chaos injector interposed on the
   wire.  [Reset] fails without touching the shard; [Hang] burns the
   call timeout then fails (the shard never saw the request — exactly
   what a hung connection looks like from the router); [Trunc]/
   [Corrupt] let the real reply through mangled; [Delay] and slow-shard
   factors stretch the observed latency.  Injected transport failures
   are charged to the shard's breaker just like real ones. *)
let shard_call t ctx s line =
  match (with_lock t (fun () -> t.chaos), ctx.ckey) with
  | None, _ | _, None -> Shard.call ?timeout_s:t.call_timeout_s s line
  | Some ch, Some key -> (
    let attempt = take_attempt ctx in
    match Chaos.action ch ~key ~attempt with
    | Fault.Injector.Reset ->
      Shard.penalize s;
      Error (Shard.Transport "connection reset (injected)")
    | Fault.Injector.Hang ->
      let budget = Option.value t.call_timeout_s ~default:1.0 in
      Unix.sleepf budget;
      Shard.penalize s;
      Error
        (Shard.Transport
           (Printf.sprintf "no reply within %.0f ms (injected hang)"
              (budget *. 1e3)))
    | (Fault.Injector.Pass | Fault.Injector.Delay _ | Fault.Injector.Trunc
      | Fault.Injector.Corrupt) as action -> (
      let t0 = Unix.gettimeofday () in
      let r = Shard.call ?timeout_s:t.call_timeout_s s line in
      let factor =
        match shard_index t s with
        | Some idx -> Chaos.slow_factor ch ~shard:idx
        | None -> 1.
      in
      if factor > 1. then
        Unix.sleepf ((factor -. 1.) *. (Unix.gettimeofday () -. t0));
      (match action with
      | Fault.Injector.Delay d -> Unix.sleepf d
      | _ -> ());
      match (r, action) with
      | Ok reply, (Fault.Injector.Trunc | Fault.Injector.Corrupt) ->
        Ok (Chaos.mangle ch ~key ~attempt ~action reply)
      | _ -> r))

(* --- reply validation --- *)

(* What one compute attempt came back as.  [Invalid] covers everything
   integrity validation rejects: unparsable bytes, an [id] echo that is
   not this request's digest, a missing or mismatched [sum].  The shard
   is penalized (the damage happened on its path) and the attempt is
   retried like a transport failure — a corrupted reply must never
   reach the client as a success. *)
type reply =
  | RValid of Json.t
  | RApp of string  (* structured application error: pass through *)
  | RShed of string  (* the shard's in-flight gate said no *)
  | RRetry of string  (* transport failure or invalid reply *)

let validate_reply t s ~digest line =
  let invalid why =
    count t (fun c -> c.invalid <- c.invalid + 1);
    Shard.penalize s;
    Log.warn (fun m ->
        m "invalid reply from %s for %s: %s" (Shard.name s) digest why);
    RRetry (Printf.sprintf "invalid reply from shard %s: %s" (Shard.name s) why)
  in
  match Json.of_string line with
  | Error msg -> invalid ("unparsable: " ^ msg)
  | Ok doc -> (
    let id_ok =
      match Json.member_opt "id" doc with
      | Some (Json.String id) -> id = digest
      | _ -> false
    in
    if not id_ok then invalid "id echo does not match the route digest"
    else
      match Json.member_opt "ok" doc with
      | Some (Json.Bool true) -> (
        match Json.member_opt "result" doc with
        | None -> invalid "missing result"
        | Some payload -> (
          match Json.member_opt "sum" doc with
          | Some (Json.String sum)
            when sum = Dnn_serial.Codec.digest_string (Json.to_string payload)
            ->
            RValid payload
          | Some _ -> invalid "sum does not match the payload"
          | None -> invalid "missing sum"))
      | Some (Json.Bool false) -> (
        match Json.member_opt "error" doc with
        | Some (Json.String msg) ->
          if Engine.error_kind msg = Some "overloaded" then RShed msg
          else RApp msg
        | _ -> invalid "missing error")
      | _ -> invalid "missing ok field")

let classify_attempt t s ~digest = function
  | Error (Shard.Overloaded msg) -> RShed msg
  | Error (Shard.Unavailable msg | Shard.Transport msg) -> RRetry msg
  | Ok line -> validate_reply t s ~digest line

(* --- hedged calls --- *)

let hedge_threshold_s t =
  match t.hedge_s with
  | Some _ as fixed -> fixed
  | None -> (
    match t.hedge_quantile with
    | None -> None
    | Some q ->
      with_lock t (fun () ->
          if Metrics.Reservoir.count t.reservoir < 20 then None
          else Some (Metrics.Reservoir.percentile t.reservoir q)))

let record_latency t seconds =
  with_lock t (fun () -> Metrics.Reservoir.add t.reservoir seconds)

(* Race the primary against [hedge] once the primary has been quiet for
   the hedge threshold.  A polling race, not a pipe-based one: each
   finisher posts into a mutex-guarded slot and the coordinator polls
   at 1 ms — the loser thread outlives the return harmlessly (its post
   lands in a slot nobody reads) instead of writing into a file
   descriptor the winner already closed.

   The first *valid* reply wins ([RValid] or a structured app error —
   both are definitive answers); if both attempts finish without one,
   the primary's failure is reported.  Attempt numbers are taken for
   both racers up front so the chaos draws do not depend on thread
   scheduling. *)
let hedged_call t ctx ~digest ~primary ~hedge line =
  match (hedge, hedge_threshold_s t) with
  | None, _ | _, None ->
    classify_attempt t primary ~digest (shard_call t ctx primary line)
  | Some hedge_shard, Some threshold ->
    let slot = Mutex.create () in
    let first = ref None in  (* first definitive reply *)
    let fallback = ref None in  (* first reply of any kind *)
    let finished = ref 0 in
    let definitive = function RValid _ | RApp _ -> true | _ -> false in
    let post ~hedged reply =
      Mutex.lock slot;
      finished := !finished + 1;
      if !fallback = None then fallback := Some (hedged, reply);
      if !first = None && definitive reply then first := Some (hedged, reply);
      Mutex.unlock slot
    in
    let launch ~hedged s attempt =
      Thread.create
        (fun () ->
          let ctx_one = { ckey = ctx.ckey; next_attempt = ref attempt } in
          let r =
            try classify_attempt t s ~digest (shard_call t ctx_one s line)
            with e -> RRetry ("hedge race: " ^ Printexc.to_string e)
          in
          post ~hedged r)
        ()
    in
    let a_primary = take_attempt ctx in
    let a_hedge = take_attempt ctx in
    ignore (launch ~hedged:false primary a_primary);
    let t0 = Unix.gettimeofday () in
    let hedge_launched = ref false in
    let result = ref None in
    while !result = None do
      Mutex.lock slot;
      let racers = if !hedge_launched then 2 else 1 in
      (match !first with
      | Some (hedged, reply) ->
        if hedged then count t (fun c -> c.hedge_wins <- c.hedge_wins + 1);
        result := Some reply
      | None ->
        if !finished >= racers then
          result := Some (match !fallback with
            | Some (_, reply) -> reply
            | None -> RRetry "hedge race finished without a reply"));
      Mutex.unlock slot;
      if !result = None then begin
        if (not !hedge_launched)
           && Unix.gettimeofday () -. t0 >= threshold
        then begin
          hedge_launched := true;
          count t (fun c -> c.hedges <- c.hedges + 1);
          ignore (launch ~hedged:true hedge_shard a_hedge)
        end;
        Thread.delay 0.001
      end
    done;
    Option.get !result

(* --- the routing flow --- *)

(* Probe one shard's cache for a digest.  [`Hit payload] on success,
   [`Miss] when the shard answered but had nothing — or answered
   something integrity validation rejected (penalized, and a miss is
   the safe reading: worst case we recompute), [`Down] when it could
   not be reached at all, [`Overloaded msg] when its in-flight gate
   shed the probe — the caller must shed the request rather than fail
   over, or overload on one shard would amplify onto the survivors. *)
let probe_cache t ctx s digest =
  match shard_call t ctx s (cache_get_line digest) with
  | Error (Shard.Overloaded msg) -> `Overloaded msg
  | Error (Shard.Unavailable _ | Shard.Transport _) -> `Down
  | Ok line -> (
    match validate_reply t s ~digest line with
    | RValid payload -> `Hit payload
    | RApp _ | RShed _ | RRetry _ -> `Miss)

(* Best-effort: seed the owner's cache with a payload found elsewhere so
   the next probe for this digest hits locally. *)
let backfill t ctx owner digest payload =
  match shard_call t ctx owner (cache_put_line digest payload) with
  | Ok _ -> ()
  | Error e ->
    Log.warn (fun m ->
        m "peer backfill of %s into %s failed: %s" digest (Shard.name owner)
          (Shard.error_message e))

(* Answer a digest-addressed leaf request: front LRU, then the owner's
   cache, then the sibling caches (peer fill), then compute on the
   owner.  An unreachable owner fails over to the next shard in ring
   order; an overloaded owner sheds the request instead — backpressure
   must push load back to the client, not amplify it onto the
   survivors.

   Compute attempts carry a retry budget per candidate shard
   ([t.retries] re-sends with doubling, capped backoff), hedge against
   the next shard in ring order when the primary is slow, and check the
   request's remaining deadline before every physical attempt — when
   the budget is gone, the router answers [deadline exceeded] itself
   instead of spending a shard's time on an answer nobody is waiting
   for. *)
let route t (env : P.envelope) digest =
  let t0 = Unix.gettimeofday () in
  count t (fun c -> c.requests <- c.requests + 1);
  let ctx = make_ctx t ~digest in
  let deadline_at =
    match env.P.deadline_ms with
    | Some ms -> Some (t0 +. (ms /. 1e3))
    | None -> Option.map (fun ms -> t0 +. (ms /. 1e3)) t.deadline_ms
  in
  let remaining_ms () =
    Option.map (fun at -> (at -. Unix.gettimeofday ()) *. 1e3) deadline_at
  in
  let expired () =
    match remaining_ms () with Some ms -> ms <= 0. | None -> false
  in
  let deadline_error () =
    render_error t env
      "deadline exceeded: request budget exhausted in the router"
  in
  match lru_find t digest with
  | Some payload ->
    count t (fun c -> c.router_hits <- c.router_hits + 1);
    render_ok t env ~cache:"hit" ~t0 payload
  | None -> (
    let owners = Ring.successors t.ring digest in
    let peers_of owner =
      List.filter (fun n -> n <> Shard.name owner) owners
    in
    let peer_fill owner =
      let rec probe = function
        | [] -> None
        | name :: rest -> (
          count t (fun c -> c.peer_probes <- c.peer_probes + 1);
          match probe_cache t ctx (shard t name) digest with
          | `Hit payload -> Some payload
          (* A busy peer just doesn't help with this fill. *)
          | `Miss | `Down | `Overloaded _ -> probe rest)
      in
      match probe (peers_of owner) with
      | None -> None
      | Some payload ->
        count t (fun c -> c.peer_fills <- c.peer_fills + 1);
        backfill t ctx owner digest payload;
        Some payload
    in
    let compute owner retry_names =
      count t (fun c -> c.computes <- c.computes + 1);
      let rec on_candidates = function
        | [] ->
          render_error t env
            "unavailable: no shard could take the request"
        | s :: rest ->
          let hedge = match rest with [] -> None | h :: _ -> Some h in
          (* Per-candidate retry budget: attempt 0 plus [t.retries]
             re-sends, each after a doubling backoff capped at 8x the
             base and at the remaining deadline. *)
          let rec attempt k last_err =
            if k > t.retries then begin
              Log.warn (fun m ->
                  m "compute on %s failed (%s); trying next shard"
                    (Shard.name s) last_err);
              on_candidates rest
            end
            else if expired () then deadline_error ()
            else begin
              if k > 0 then begin
                count t (fun c -> c.retries <- c.retries + 1);
                let back =
                  Float.min
                    (t.retry_backoff_s *. (2. ** float_of_int (k - 1)))
                    (t.retry_backoff_s *. 8.)
                in
                let back =
                  match remaining_ms () with
                  | Some ms -> Float.min back (Float.max 0. (ms /. 1e3))
                  | None -> back
                in
                if back > 0. then Unix.sleepf back
              end;
              if expired () then deadline_error ()
              else begin
                let line =
                  forward_line t env ~digest ~remaining_ms:(remaining_ms ())
                in
                let call_t0 = Unix.gettimeofday () in
                let reply = hedged_call t ctx ~digest ~primary:s ~hedge line in
                record_latency t (Unix.gettimeofday () -. call_t0);
                match reply with
                | RValid payload ->
                  lru_store t digest payload;
                  render_ok t env ~cache:"miss" ~t0 payload
                | RApp msg -> render_error t env msg
                | RShed msg -> render_error t env msg
                | RRetry msg -> attempt (k + 1) msg
              end
            end
          in
          attempt 0 "no attempt made"
      in
      on_candidates (Shard.name owner :: retry_names |> List.map (shard t))
    in
    let rec from_owner = function
      | [] ->
        render_error t env "unavailable: no shard could take the request"
      | owner_name :: fallbacks -> (
        if expired () then deadline_error ()
        else
          let owner = shard t owner_name in
          match probe_cache t ctx owner digest with
          | `Hit payload ->
            count t (fun c -> c.shard_hits <- c.shard_hits + 1);
            lru_store t digest payload;
            render_ok t env ~cache:"hit" ~t0 payload
          | `Miss -> (
            match peer_fill owner with
            | Some payload ->
              lru_store t digest payload;
              render_ok t env ~cache:"peer" ~t0 payload
            | None -> (
              match env.P.request with
              | P.Cache_get _ ->
                (* Nothing to compute: the probe is the request. *)
                render_error t env (Printf.sprintf "not cached: %s" digest)
              | _ -> compute owner fallbacks))
          | `Overloaded msg ->
            (* Backpressure, not failover: the owner is alive but full. *)
            render_error t env msg
          | `Down ->
            (* The owner is unreachable for probes too; the next shard in
               ring order takes over wholesale. *)
            from_owner fallbacks)
    in
    match env.P.request with
    | P.Cache_put (_, payload) ->
      lru_store t digest payload;
      let owner = shard t (Ring.lookup t.ring digest) in
      (match
         shard_call t ctx owner
           (forward_line t env ~digest ~remaining_ms:(remaining_ms ()))
       with
      | Ok line -> (
        match validate_reply t owner ~digest line with
        | RValid payload -> render_ok t env ~t0 payload
        | RApp msg | RShed msg | RRetry msg -> render_error t env msg)
      | Error e -> render_error t env (Shard.error_message e))
    | _ -> from_owner owners)

(* Requests with no digest (models) go to the first shard that answers.
   They carry no chaos key — there is no stable identity to draw
   against — and no integrity digest, since there is no digest for the
   reply to echo. *)
let forward_any t (env : P.envelope) =
  let t0 = Unix.gettimeofday () in
  let env =
    match env.P.deadline_ms with
    | Some _ -> env
    | None -> { env with P.deadline_ms = t.deadline_ms }
  in
  let line = Json.to_string (P.envelope_to_json env) in
  let rec on = function
    | [] ->
      render_error t env "unavailable: no shard could take the request"
    | s :: rest -> (
      match Shard.call ?timeout_s:t.call_timeout_s s line with
      | Ok reply -> (
        match parse_response reply with
        | Ok (Ok payload) -> render_ok t env ~t0 payload
        | Ok (Error msg) -> render_error t env msg
        | Error msg -> render_error t env msg)
      | Error _ -> on rest)
  in
  on t.shards

(* --- aggregated stats --- *)

let counter_list t =
  with_lock t (fun () ->
      [ ("requests", t.c.requests);
        ("router_hits", t.c.router_hits);
        ("shard_hits", t.c.shard_hits);
        ("peer_probes", t.c.peer_probes);
        ("peer_fills", t.c.peer_fills);
        ("computes", t.c.computes);
        ("shed", t.c.shed);
        ("errors", t.c.errors);
        ("retries", t.c.retries);
        ("hedges", t.c.hedges);
        ("hedge_wins", t.c.hedge_wins);
        ("invalid_replies", t.c.invalid);
        ("deadline_errors", t.c.deadline);
        ("flushed", t.c.flushed) ])

let counters_json t =
  let base = List.map (fun (k, v) -> (k, Json.Int v)) (counter_list t) in
  Json.Obj
    (base
    @ [ ( "router_cache",
          Json.Obj
            [ ("entries", Json.Int (Lru.length t.lru));
              ("bytes", Json.Int (Lru.total_bytes t.lru)) ] );
        ( "ring",
          Json.Obj
            [ ("shards", Json.Int (List.length t.shards));
              ("vnodes", Json.Int (Ring.vnodes t.ring)) ] );
        ("draining", Json.Bool (with_lock t (fun () -> t.draining))) ])

let stats_payload t =
  let shard_stats =
    List.map
      (fun s ->
        let remote =
          match
            Shard.call ?timeout_s:t.call_timeout_s s
              (Json.to_string (Json.Obj [ ("op", Json.String "stats") ]))
          with
          | Ok line -> (
            match parse_response line with
            | Ok (Ok payload) -> payload
            | Ok (Error _) | Error _ -> Json.Null)
          | Error _ -> Json.Null
        in
        (Shard.name s, Shard.stats_json s, remote))
      t.shards
  in
  (* Fleet-wide cache totals, summed over whichever shards answered. *)
  let cache_total field =
    List.fold_left
      (fun acc (_, _, remote) ->
        match Json.member_opt "cache" remote with
        | Some cache -> (
          match Json.member_opt field cache with
          | Some (Json.Int n) -> acc + n
          | _ -> acc)
        | None -> acc)
      0 shard_stats
  in
  let chaos_field =
    match with_lock t (fun () -> t.chaos) with
    | None -> []
    | Some ch -> [ ("chaos", Chaos.counters_json ch) ]
  in
  Json.Obj
    ([ ("tier", counters_json t);
       ( "aggregate",
         Json.Obj
           [ ("cache_hits", Json.Int (cache_total "hits"));
             ("cache_misses", Json.Int (cache_total "misses"));
             ("cache_entries", Json.Int (cache_total "entries"));
             ("cache_bytes", Json.Int (cache_total "bytes")) ] );
       ( "shards",
         Json.List
           (List.map
              (fun (name, health, remote) ->
                Json.Obj
                  [ ("name", Json.String name); ("health", health);
                    ("stats", remote) ])
              shard_stats) ) ]
    @ chaos_field)

(* --- entry points --- *)

let rec respond t (env : P.envelope) =
  match env.P.request with
  | P.Batch subs ->
    let t0 = Unix.gettimeofday () in
    let docs = List.map (respond t) subs in
    render_ok t env ~t0 (Json.List docs)
  | P.Stats ->
    let t0 = Unix.gettimeofday () in
    render_ok t env ~t0 (stats_payload t)
  | _ -> (
    match Engine.route_digest env.P.request with
    | Error msg -> render_error t env msg
    | Ok (Some digest) -> route t env digest
    | Ok None -> forward_any t env)

let handle_line t line =
  if String.length line > Engine.max_line_bytes then
    Wire.to_line
      (Wire.error ~op:"parse"
         (Printf.sprintf "request exceeds %d bytes" Engine.max_line_bytes))
  else
    match P.request_of_line line with
    | Error msg ->
      Wire.to_line (Wire.error ~op:"parse" msg)
    | Ok env -> (
      (* A draining tier stops admitting work ([stats] stays open so
         the operator can watch the drain) but finishes what it already
         accepted — the in-flight gate below is what [await_idle]
         waits on. *)
      let admitted =
        with_lock t (fun () ->
            match env.P.request with
            | P.Stats -> true
            | _ ->
              if t.draining then false
              else begin
                t.inflight <- t.inflight + 1;
                true
              end)
      in
      if not admitted then
        Wire.to_line
          (Wire.error ?id:env.P.id
             ~op:(P.op_name env.P.request)
             ~kind:"unavailable" "unavailable: tier is draining")
      else
        let release () =
          match env.P.request with
          | P.Stats -> ()
          | _ -> with_lock t (fun () -> t.inflight <- t.inflight - 1)
        in
        Fun.protect ~finally:release (fun () ->
            match respond t env with
            | doc -> Wire.to_line doc
            | exception e ->
              Log.err (fun m ->
                  m "tier dispatch raised: %s" (Printexc.to_string e));
              Wire.to_line
                (Wire.error ?id:env.P.id
                   ~op:(P.op_name env.P.request)
                   ~kind:"internal"
                   ("internal: " ^ Printexc.to_string e))))

(* --- graceful drain --- *)

let begin_drain t = with_lock t (fun () -> t.draining <- true)

let draining t = with_lock t (fun () -> t.draining)

let inflight t = with_lock t (fun () -> t.inflight)

(* Wait for every admitted request to finish rendering; true when the
   tier went idle within the budget. *)
let await_idle ?(timeout_s = 10.) t =
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    if inflight t = 0 then true
    else if Unix.gettimeofday () -. t0 >= timeout_s then false
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ()

(* Push the router's LRU back to the owning shards so a restarted tier
   warms from their caches instead of recomputing.  MRU first: if the
   shards go away mid-flush, the hottest entries made it.  The flush
   bypasses the chaos injector (no chaos key) — it repairs state, and
   the entries were validated when they were cached. *)
let flush_cache t =
  let entries = with_lock t (fun () -> Lru.bindings t.lru) in
  List.fold_left
    (fun acc (digest, payload) ->
      let owner = shard t (Ring.lookup t.ring digest) in
      match
        Shard.call ?timeout_s:t.call_timeout_s owner
          (cache_put_line digest payload)
      with
      | Ok _ ->
        count t (fun c -> c.flushed <- c.flushed + 1);
        acc + 1
      | Error e ->
        Log.warn (fun m ->
            m "drain flush of %s to %s failed: %s" digest (Shard.name owner)
              (Shard.error_message e));
        acc)
    0 entries

let drain ?timeout_s t =
  begin_drain t;
  let idle = await_idle ?timeout_s t in
  if not idle then
    Log.warn (fun m ->
        m "drain timed out with %d requests still in flight" (inflight t));
  flush_cache t

let shards t = t.shards

let shutdown t =
  t.stop_prober <- true;
  Option.iter Thread.join t.prober;
  t.prober <- None;
  List.iter Shard.stop t.shards
