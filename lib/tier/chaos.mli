(** Seeded transport-fault decisions for the router->shard path.

    Wraps {!Fault.Injector}'s counter-based draws in a per-request-key
    discipline: every action is a pure function of (spec seed, route
    digest, occurrence number, attempt), so a request stream under a
    spec replays the identical fault sequence regardless of wall clock
    or thread interleaving.  The tier consults it on every
    digest-addressed shard call; health probes, stats broadcasts and
    drain flushes carry no key and are never faulted. *)

type t

val create : Fault.Spec.t -> t option
(** [None] when the spec has no transport faults
    ({!Fault.Spec.has_transport_faults}) — the chaos-off tier carries
    no chaos state at all, keeping its output byte-identical. *)

val spec : t -> Fault.Spec.t

val key : t -> digest:string -> int
(** The chaos key for the next occurrence of [digest] (each call
    advances the occurrence counter).  Taken once per routed request;
    all of the request's probes, attempts and hedges share it. *)

val action : t -> key:int -> attempt:int -> Fault.Injector.transport_action
(** The fault injected on physical call [attempt] of request [key];
    counted at draw time so counters replay with the draws. *)

val mangle :
  t -> key:int -> attempt:int -> action:Fault.Injector.transport_action ->
  string -> string
(** Apply a [Trunc]/[Corrupt] action's damage to a response line. *)

val slow_factor : t -> shard:int -> float
(** Service-time multiplier for shard [shard] (>= 1; counted when
    above 1). *)

val counter_list : t -> (string * int) list
(** Injected-fault counters, deterministic under a deterministic
    request stream. *)

val counters_json : t -> Dnn_serial.Json.t
(** {!counter_list} plus the canonical spec string. *)
