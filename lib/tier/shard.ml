let src = Logs.Src.create "lcmm.tier.shard" ~doc:"Tier shard supervisor"

module Log = (val Logs.src_log src : Logs.LOG)

type error =
  | Overloaded of string  (* shed at the shard's in-flight gate *)
  | Unavailable of string  (* circuit open, no attempt made *)
  | Transport of string  (* connect/read/write failed after retry *)

let error_message = function
  | Overloaded m | Unavailable m | Transport m -> m

(* A backend is either an in-process handler (tests, single-process
   tiers) or a child process serving the NDJSON protocol on a Unix
   socket.  The raw fd rides along so per-call receive timeouts can be
   set without tearing the buffered channels down. *)
type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type proc = {
  socket : string;
  argv : string array;  (* argv.(0) is the program; reused on respawn *)
  mutable pid : int;
  mutable idle : conn list;  (* pooled connections, LIFO *)
  mutable restarts : int;
}

type backend =
  | Local of (string -> string)
  | Proc of proc

type t = {
  name : string;
  backend : backend;
  mutex : Mutex.t;
  max_inflight : int;
  (* Circuit breaker over transport failures: [breaker_threshold]
     consecutive failures open the circuit for [breaker_cooldown_s];
     after that one probe call is admitted and its outcome closes or
     re-opens it.  An active health probe ({!probe}) short-circuits the
     wait by closing the circuit on a successful roundtrip. *)
  breaker_threshold : int;
  breaker_cooldown_s : float;
  mutable inflight : int;
  mutable consecutive_failures : int;
  mutable open_until : float;
  mutable tripped : bool;  (* circuit opened at least once, not yet re-closed *)
  mutable calls : int;
  mutable failures : int;
  mutable probes : int;
}

let default_breaker_threshold = 3

let default_breaker_cooldown_s = 2.0

let make ?(breaker_threshold = default_breaker_threshold)
    ?(breaker_cooldown_s = default_breaker_cooldown_s) name backend
    max_inflight =
  if max_inflight < 1 then invalid_arg "Shard: max_inflight must be >= 1";
  if breaker_threshold < 1 then
    invalid_arg "Shard: breaker_threshold must be >= 1";
  if breaker_cooldown_s <= 0. then
    invalid_arg "Shard: breaker_cooldown_s must be positive";
  { name;
    backend;
    mutex = Mutex.create ();
    max_inflight;
    breaker_threshold;
    breaker_cooldown_s;
    inflight = 0;
    consecutive_failures = 0;
    open_until = 0.;
    tripped = false;
    calls = 0;
    failures = 0;
    probes = 0 }

let local ~name ?(max_inflight = 64) ?breaker_threshold ?breaker_cooldown_s
    handler =
  make ?breaker_threshold ?breaker_cooldown_s name (Local handler)
    max_inflight

let name t = t.name

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

(* --- child process lifecycle --- *)

let devnull_pair () =
  let rd = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let wr = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  (rd, wr)

(* OCaml signal numbers are negative runtime encodings; name the common
   ones so "died (SIGKILL)" reads sanely in operator logs. *)
let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigpipe then "SIGPIPE"
  else if n = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" n

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> signal_name n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by %s" (signal_name n)

(* Spawn argv with stdin and stdout on /dev/null (a shard logging to
   stdout must never pollute the tier's own stdio protocol stream);
   stderr is inherited so shard crashes stay visible. *)
let start_process ~socket argv =
  if Sys.file_exists socket then Unix.unlink socket;
  let rd, wr = devnull_pair () in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close rd; Unix.close wr)
      (fun () -> Unix.create_process argv.(0) argv rd wr Unix.stderr)
  in
  (* Wait for the child to bind its socket: a connect probe every 50 ms,
     up to 10 s, watching for early death the whole while. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | p, status when p = pid ->
      Error
        (Printf.sprintf "shard process died during startup (%s)"
           (status_string status))
    | _ -> (
      let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect sock (Unix.ADDR_UNIX socket) with
      | () ->
        Ok { fd = sock;
             ic = Unix.in_channel_of_descr sock;
             oc = Unix.out_channel_of_descr sock }
      | exception Unix.Unix_error _ ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "shard socket %s never came up" socket)
        else begin
          Unix.sleepf 0.05;
          wait ()
        end)
  in
  match wait () with
  | Ok conn -> Ok (pid, conn)
  | Error _ as e ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    e

let spawn ~name ~socket ?(max_inflight = 64) ?breaker_threshold
    ?breaker_cooldown_s argv =
  match start_process ~socket argv with
  | Error _ as e -> e
  | Ok (pid, conn) ->
    Log.info (fun m -> m "shard %s up: pid %d on %s" name pid socket);
    Ok
      (make ?breaker_threshold ?breaker_cooldown_s name
         (Proc { socket; argv; pid; idle = [ conn ]; restarts = 0 })
         max_inflight)

let close_conn conn =
  (try close_in_noerr conn.ic with _ -> ());
  try close_out_noerr conn.oc with _ -> ()

(* Reap a dead child and respawn it in place (crash-restart).  Called
   under the shard mutex.  The stale socket file is removed by
   [start_process] before the replacement binds. *)
let ensure_alive p =
  match Unix.waitpid [ Unix.WNOHANG ] p.pid with
  | 0, _ -> Ok ()  (* still running *)
  | exception Unix.Unix_error _ -> Ok ()  (* already reaped *)
  | _, status ->
    Log.warn (fun m ->
        m "shard process %d died (%s); restarting" p.pid
          (status_string status));
    List.iter close_conn p.idle;
    p.idle <- [];
    (match start_process ~socket:p.socket p.argv with
    | Error _ as e -> e
    | Ok (pid, conn) ->
      p.pid <- pid;
      p.restarts <- p.restarts + 1;
      p.idle <- [ conn ];
      Ok ())

let checkout t p =
  with_lock t (fun () ->
      match ensure_alive p with
      | Error _ as e -> e
      | Ok () -> (
        match p.idle with
        | conn :: rest ->
          p.idle <- rest;
          Ok conn
        | [] -> (
          let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect sock (Unix.ADDR_UNIX p.socket) with
          | () ->
            Ok { fd = sock;
                 ic = Unix.in_channel_of_descr sock;
                 oc = Unix.out_channel_of_descr sock }
          | exception Unix.Unix_error (err, _, _) ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "connect %s: %s" p.socket
                 (Unix.error_message err)))))

let checkin t p conn = with_lock t (fun () -> p.idle <- conn :: p.idle)

(* --- the call path --- *)

(* One request line out, one framed reply line back.  [timeout_s]
   bounds the reply wait via SO_RCVTIMEO on the raw socket — a hung
   shard surfaces as a transport timeout instead of wedging the router
   thread.  The timeout is cleared again before the connection goes
   back to the pool; a timed-out connection is never pooled (its late
   reply would answer the wrong request). *)
let roundtrip ?timeout_s conn line =
  output_string conn.oc line;
  if not (String.length line > 0 && line.[String.length line - 1] = '\n') then
    output_char conn.oc '\n';
  flush conn.oc;
  (match timeout_s with
  | Some s -> (
    try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  let reply = Dnn_serial.Wire.read_reply conn.ic in
  (match timeout_s, reply with
  | Some _, Ok _ -> (
    try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO 0.
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ());
  reply

let attempt_proc t ?timeout_s p line =
  match checkout t p with
  | Error msg -> Error msg
  | Ok conn -> (
    let t0 = Unix.gettimeofday () in
    match roundtrip ?timeout_s conn line with
    | Ok response ->
      checkin t p conn;
      Ok response
    | Error msg ->
      close_conn conn;
      Error msg
    | exception (End_of_file | Sys_error _ | Sys_blocked_io
                | Unix.Unix_error _) ->
      close_conn conn;
      let timed_out =
        match timeout_s with
        | Some s -> Unix.gettimeofday () -. t0 >= 0.5 *. s
        | None -> false
      in
      if timed_out then
        Error
          (Printf.sprintf "no reply within %.0f ms"
             (Option.get timeout_s *. 1e3))
      else Error "connection lost")

let attempt t ?timeout_s line =
  match t.backend with
  | Local handler -> (
    (* In-process handlers run on the caller thread; a receive timeout
       cannot interrupt them and is ignored. *)
    match handler line with
    | response ->
      (* Normalise: in-process handlers return newline-terminated
         response lines (the serve-loop contract). *)
      Ok (String.trim response)
    | exception e ->
      Error (Printf.sprintf "handler raised: %s" (Printexc.to_string e)))
  | Proc p -> (
    match attempt_proc t ?timeout_s p line with
    | Ok _ as ok -> ok
    | Error _ ->
      (* One retry on a fresh connection: the common failure is a stale
         pooled connection to a restarted process. *)
      attempt_proc t ?timeout_s p line)

let trip_if_needed t =
  if t.consecutive_failures >= t.breaker_threshold then begin
    t.open_until <- Unix.gettimeofday () +. t.breaker_cooldown_s;
    t.tripped <- true
  end

let record_outcome t ok =
  with_lock t (fun () ->
      t.calls <- t.calls + 1;
      if ok then begin
        t.consecutive_failures <- 0;
        t.tripped <- false
      end
      else begin
        t.failures <- t.failures + 1;
        t.consecutive_failures <- t.consecutive_failures + 1;
        trip_if_needed t
      end)

(* A transport-level success whose *content* the router rejected
   (corrupted or mismatched reply): charge it to the breaker like a
   failure, without double-counting the call. *)
let penalize t =
  with_lock t (fun () ->
      t.failures <- t.failures + 1;
      t.consecutive_failures <- t.consecutive_failures + 1;
      trip_if_needed t)

let call ?timeout_s t line =
  let admitted =
    with_lock t (fun () ->
        if Unix.gettimeofday () < t.open_until then
          Error
            (Unavailable
               (Printf.sprintf "unavailable: shard %s circuit open" t.name))
        else if t.inflight >= t.max_inflight then
          Error
            (Overloaded
               (Printf.sprintf
                  "overloaded: shard %s at %d in-flight requests" t.name
                  t.max_inflight))
        else begin
          t.inflight <- t.inflight + 1;
          Ok ()
        end)
  in
  match admitted with
  | Error _ as e -> e
  | Ok () ->
    let result =
      Fun.protect
        ~finally:(fun () -> with_lock t (fun () -> t.inflight <- t.inflight - 1))
        (fun () -> attempt t ?timeout_s line)
    in
    (match result with
    | Ok response ->
      record_outcome t true;
      Ok response
    | Error msg ->
      record_outcome t false;
      Error (Transport (Printf.sprintf "shard %s: %s" t.name msg)))

let healthy t =
  with_lock t (fun () -> Unix.gettimeofday () >= t.open_until)

(* Tri-state health as the prober sees it: [`Down] while the circuit is
   open; [`Suspect] once the cooldown expires (the classic half-open
   probation — failures on record, recovery unproven) or while recent
   failures accumulate under a still-closed circuit; [`Up] otherwise. *)
let state t =
  with_lock t (fun () ->
      if Unix.gettimeofday () < t.open_until then `Down
      else if t.tripped || t.consecutive_failures > 0 then `Suspect
      else `Up)

let state_name = function `Up -> "up" | `Suspect -> "suspect" | `Down -> "down"

let probe_line =
  Dnn_serial.Json.to_string
    (Dnn_serial.Json.Obj [ ("op", Dnn_serial.Json.String "stats") ])

(* Active health probe: one [stats] roundtrip, bypassing both the
   in-flight gate and the open circuit (probing a down shard is the
   point).  Success closes the circuit immediately — the prober
   promotes a shard down -> suspect -> up faster than the passive
   cooldown-and-retry path — while failure re-arms the cooldown. *)
let probe ?timeout_s t =
  with_lock t (fun () -> t.probes <- t.probes + 1);
  match attempt t ?timeout_s probe_line with
  | Ok _ ->
    with_lock t (fun () ->
        t.consecutive_failures <- 0;
        t.tripped <- false;
        t.open_until <- 0.);
    true
  | Error _ ->
    with_lock t (fun () ->
        t.failures <- t.failures + 1;
        t.consecutive_failures <- t.consecutive_failures + 1;
        t.open_until <- Unix.gettimeofday () +. t.breaker_cooldown_s;
        t.tripped <- true);
    false

let restarts t =
  match t.backend with Local _ -> 0 | Proc p -> with_lock t (fun () -> p.restarts)

let stats_json t =
  let open Dnn_serial.Json in
  with_lock t (fun () ->
      let now = Unix.gettimeofday () in
      let st =
        if now < t.open_until then `Down
        else if t.tripped || t.consecutive_failures > 0 then `Suspect
        else `Up
      in
      Obj
        [ ("name", String t.name);
          ( "backend",
            String (match t.backend with Local _ -> "local" | Proc _ -> "proc")
          );
          ("healthy", Bool (now >= t.open_until));
          ("state", String (state_name st));
          ("inflight", Int t.inflight);
          ("max_inflight", Int t.max_inflight);
          ("calls", Int t.calls);
          ("failures", Int t.failures);
          ("probes", Int t.probes);
          ( "restarts",
            Int (match t.backend with Local _ -> 0 | Proc p -> p.restarts) ) ])

(* Terminate the child and remove its socket file.  SIGTERM first with a
   2 s grace window, SIGKILL after; the child is always reaped, so no
   zombies survive the supervisor. *)
let stop t =
  match t.backend with
  | Local _ -> ()
  | Proc p ->
    with_lock t (fun () ->
        List.iter close_conn p.idle;
        p.idle <- [];
        (try Unix.kill p.pid Sys.sigterm with Unix.Unix_error _ -> ());
        let rec reap tries =
          match Unix.waitpid [ Unix.WNOHANG ] p.pid with
          | 0, _ when tries > 0 ->
            Unix.sleepf 0.05;
            reap (tries - 1)
          | 0, _ ->
            (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ())
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        reap 40;
        try Unix.unlink p.socket with Unix.Unix_error _ | Sys_error _ -> ())
