(** One backend shard as the router sees it: a supervised worker
    process (or in-process handler) behind an in-flight gate and a
    transport circuit breaker.

    Process shards speak the NDJSON protocol over a Unix socket.  The
    supervisor owns the child's whole lifecycle: it spawns it with
    stdio detached (stdout must not pollute the tier's own protocol
    stream), reaps and respawns it in place when it dies, and on
    {!stop} terminates it (SIGTERM, then SIGKILL after a 2 s grace
    window), reaps it and removes the socket file — no leaked sockets
    or orphan processes survive the tier.

    Health is tri-state.  [`Down] while the breaker's circuit is open;
    [`Suspect] once the cooldown expires with recovery unproven (the
    half-open probation) or while failures accumulate under a closed
    circuit; [`Up] otherwise.  The passive path recovers through the
    cooldown plus one successful call; the active {!probe} promotes a
    shard the moment it answers again. *)

type t

type error =
  | Overloaded of string
      (** Shed without an attempt: the shard already has [max_inflight]
          calls in flight. *)
  | Unavailable of string
      (** Shed without an attempt: the shard's circuit is open after
          repeated transport failures. *)
  | Transport of string
      (** The call was attempted (twice — one retry on a fresh
          connection) and failed. *)

val error_message : error -> string

val local :
  name:string -> ?max_inflight:int -> ?breaker_threshold:int ->
  ?breaker_cooldown_s:float -> (string -> string) -> t
(** An in-process shard over a line handler (tests, single-process
    tiers).  [max_inflight] defaults to 64; the breaker to 3
    consecutive failures / 2 s cooldown.  Raises [Invalid_argument]
    for a threshold below 1 or a non-positive cooldown. *)

val spawn :
  name:string -> socket:string -> ?max_inflight:int ->
  ?breaker_threshold:int -> ?breaker_cooldown_s:float -> string array ->
  (t, string) result
(** [spawn ~name ~socket argv] starts [argv] (argv.(0) is the program
    path) as a child process, expecting it to bind and serve [socket];
    waits up to 10 s for the socket to come up.  A stale socket file is
    removed before the child starts. *)

val name : t -> string

val call : ?timeout_s:float -> t -> string -> (string, error) result
(** Send one request line, wait for the one response line (returned
    without its trailing newline).  [timeout_s] bounds the reply wait
    (SO_RCVTIMEO on the socket): a hung shard surfaces as a transport
    timeout instead of wedging the caller, and the timed-out connection
    is discarded, never pooled.  In-process shards cannot be
    interrupted and ignore the timeout.  [breaker_threshold]
    consecutive transport failures open the circuit for
    [breaker_cooldown_s]; then one probe call is admitted and its
    outcome closes or re-opens it.  A dead child is reaped and
    respawned transparently on the next call. *)

val penalize : t -> unit
(** Charge the breaker with a failure for a call that succeeded at the
    transport level but whose content the router rejected (corrupted,
    truncated or mismatched reply).  Does not double-count the call. *)

val healthy : t -> bool
(** False while the circuit is open. *)

val state : t -> [ `Up | `Suspect | `Down ]
(** Tri-state health (see the module doc). *)

val state_name : [ `Up | `Suspect | `Down ] -> string

val probe : ?timeout_s:float -> t -> bool
(** Active health probe: one [stats] roundtrip, bypassing both the
    in-flight gate and the open circuit.  Success closes the circuit
    immediately (down/suspect -> up); failure re-arms the cooldown. *)

val restarts : t -> int
(** Crash-restarts performed so far (always 0 for local shards). *)

val stats_json : t -> Dnn_serial.Json.t

val stop : t -> unit
(** Terminate and reap the child, remove its socket file.  No-op for
    local shards.  Idempotent. *)
