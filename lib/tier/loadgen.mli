(** Open-loop load generation against a line handler.

    The generator schedules request [i] at [t0 + i/rps] regardless of
    how long earlier requests took — an open loop, so when the server
    falls behind, latency and shed counts grow instead of the offered
    rate silently dropping (the failure mode of closed-loop "send, wait,
    send" generators that hides saturation). *)

val zoo_mix : ?models:int -> unit -> string list
(** A deterministic request mix over the [models] (default 4) smallest
    zoo graphs: each compiled at i8 and i16, plus a [stats] probe.
    Identical on every call, so benches replay the same stream. *)

type result = {
  offered_rps : float;
  duration_s : float;
  sent : int;
  ok : int;
  errors : int;
  shed : int;  (** Structured overloaded/unavailable responses. *)
  divergent : int;
      (** Successes that differed byte-for-byte from the [reference]
          answer — silently corrupted responses, the failure mode the
          chaos bench must prove is zero. *)
  achieved_rps : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

val run :
  handler:(string -> string) -> mix:string list -> rps:float ->
  duration_s:float -> ?threads:int -> ?reference:(string -> string option) ->
  unit -> result
(** Drive [rps * duration_s] requests (round-robin over [mix]) from
    [threads] (default 8) sender threads; latency percentiles are
    measured per request via {!Lcmm_service.Metrics.percentile}.
    [reference] maps a request line to its expected fault-free response
    line; every success is compared against it and mismatches counted
    as [divergent] (requests it maps to [None] are not checked). *)

val result_to_json : result -> Dnn_serial.Json.t

val keeps_up : slo_p99_ms:float -> result -> bool
(** Sustained the offered rate (achieved >= 90% of offered), met the
    p99 SLO, and shed at most 5% of requests. *)

val find_saturation :
  handler:(string -> string) -> mix:string list -> start_rps:float ->
  duration_s:float -> slo_p99_ms:float -> ?threads:int -> ?max_steps:int ->
  unit -> float * result list
(** Double the offered rate from [start_rps] until the handler stops
    {!keeps_up} (or [max_steps], default 10, doublings pass); returns
    the last sustained achieved rate — 0 if even [start_rps] failed —
    and every ladder step's result. *)
