module Json = Dnn_serial.Json
module Metrics = Lcmm_service.Metrics

(* --- request mix --- *)

(* A deterministic zoo-sampled mix: the [models] smallest zoo graphs
   (small enough that a warmed tier answers in microseconds, so the
   generator measures the serving path, not the planner), each compiled
   at two dtypes, plus a stats probe — the read-mostly traffic shape a
   plan service sees.  Deterministic so every bench run and every shard
   count replays the identical request stream. *)
let zoo_mix ?(models = 4) () =
  let by_size =
    Models.Zoo.all
    |> List.map (fun e ->
           ( Dnn_graph.Graph.node_count (e.Models.Zoo.build ()),
             e.Models.Zoo.model_name ))
    |> List.sort compare
  in
  let picked =
    List.filteri (fun i _ -> i < models) by_size |> List.map snd
  in
  let compile name dtype =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "compile"); ("model", Json.String name);
           ("dtype", Json.String dtype) ])
  in
  List.concat_map
    (fun name -> [ compile name "i8"; compile name "i16" ])
    picked
  @ [ Json.to_string (Json.Obj [ ("op", Json.String "stats") ]) ]

(* --- open-loop generation --- *)

type result = {
  offered_rps : float;
  duration_s : float;
  sent : int;
  ok : int;
  errors : int;
  shed : int;
  divergent : int;
  achieved_rps : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

type outcome = Resp_ok | Resp_shed | Resp_error

let classify line =
  match Json.of_string line with
  | Error _ -> Resp_error
  | Ok doc -> (
    match Json.member_opt "ok" doc with
    | Some (Json.Bool true) -> Resp_ok
    | _ -> (
      match Json.member_opt "kind" doc with
      | Some (Json.String ("overloaded" | "unavailable")) -> Resp_shed
      | _ -> Resp_error))

type worker_acc = {
  mutable w_ok : int;
  mutable w_shed : int;
  mutable w_errors : int;
  mutable w_divergent : int;
  mutable lats : float list;  (* seconds, newest first *)
}

(* Open-loop: request [i] is due at [t0 + i/rps] regardless of how long
   earlier requests took — the schedule does not slow down when the
   server does, which is what exposes saturation (a closed loop would
   politely self-throttle and hide it). *)
let run ~handler ~mix ~rps ~duration_s ?(threads = 8) ?reference () =
  if rps <= 0. then invalid_arg "Loadgen.run: rps must be positive";
  if mix = [] then invalid_arg "Loadgen.run: empty mix";
  let lines = Array.of_list mix in
  let total = max 1 (int_of_float (rps *. duration_s)) in
  let next = Atomic.make 0 in
  let results = Mutex.create () in
  let merged =
    { w_ok = 0; w_shed = 0; w_errors = 0; w_divergent = 0; lats = [] }
  in
  let t0 = Unix.gettimeofday () in
  let worker () =
    let acc =
      { w_ok = 0; w_shed = 0; w_errors = 0; w_divergent = 0; lats = [] }
    in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        let due = t0 +. (float_of_int i /. rps) in
        let now = Unix.gettimeofday () in
        if due > now then Unix.sleepf (due -. now);
        let sent_at = Unix.gettimeofday () in
        let request = lines.(i mod Array.length lines) in
        let response = handler request in
        acc.lats <- (Unix.gettimeofday () -. sent_at) :: acc.lats;
        (match classify response with
        | Resp_ok ->
          acc.w_ok <- acc.w_ok + 1;
          (* A success that differs byte-for-byte from the fault-free
             reference answer is the one failure mode worse than an
             error: the client cannot tell it was served damaged
             goods. *)
          (match reference with
          | Some expected_of -> (
            match expected_of request with
            | Some expected when expected <> response ->
              acc.w_divergent <- acc.w_divergent + 1
            | Some _ | None -> ())
          | None -> ())
        | Resp_shed -> acc.w_shed <- acc.w_shed + 1
        | Resp_error -> acc.w_errors <- acc.w_errors + 1);
        loop ()
      end
    in
    loop ();
    Mutex.lock results;
    merged.w_ok <- merged.w_ok + acc.w_ok;
    merged.w_shed <- merged.w_shed + acc.w_shed;
    merged.w_errors <- merged.w_errors + acc.w_errors;
    merged.w_divergent <- merged.w_divergent + acc.w_divergent;
    merged.lats <- List.rev_append acc.lats merged.lats;
    Mutex.unlock results
  in
  let threads = List.init (max 1 threads) (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let elapsed = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let sent = merged.w_ok + merged.w_shed + merged.w_errors in
  let lats_ms =
    Array.of_list (List.rev_map (fun s -> s *. 1e3) merged.lats)
  in
  Array.sort compare lats_ms;
  let p q = if Array.length lats_ms = 0 then 0. else Metrics.percentile lats_ms q in
  { offered_rps = rps;
    duration_s;
    sent;
    ok = merged.w_ok;
    errors = merged.w_errors;
    shed = merged.w_shed;
    divergent = merged.w_divergent;
    achieved_rps = float_of_int sent /. elapsed;
    p50_ms = p 0.5;
    p99_ms = p 0.99;
    p999_ms = p 0.999;
    max_ms = (if Array.length lats_ms = 0 then 0. else lats_ms.(Array.length lats_ms - 1)) }

let result_to_json r =
  Json.Obj
    [ ("offered_rps", Json.Float r.offered_rps);
      ("duration_s", Json.Float r.duration_s);
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("errors", Json.Int r.errors);
      ("shed", Json.Int r.shed);
      ("divergent", Json.Int r.divergent);
      ("achieved_rps", Json.Float r.achieved_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("p999_ms", Json.Float r.p999_ms);
      ("max_ms", Json.Float r.max_ms) ]

(* A run "keeps up" when it sustains the offered rate, meets the p99 SLO
   and sheds almost nothing. *)
let keeps_up ~slo_p99_ms r =
  r.achieved_rps >= 0.9 *. r.offered_rps
  && r.p99_ms <= slo_p99_ms
  && float_of_int r.shed <= 0.05 *. float_of_int (max 1 r.sent)

(* Double the offered rate until the tier stops keeping up; the
   saturation point is the last rate it sustained.  [max_steps] bounds
   the ladder when the handler is effectively free. *)
let find_saturation ~handler ~mix ~start_rps ~duration_s ~slo_p99_ms
    ?(threads = 8) ?(max_steps = 10) () =
  let rec climb rps best steps n =
    if n >= max_steps then (best, List.rev steps)
    else
      let r = run ~handler ~mix ~rps ~duration_s ~threads () in
      if keeps_up ~slo_p99_ms r then
        climb (rps *. 2.) r.achieved_rps (r :: steps) (n + 1)
      else (best, List.rev (r :: steps))
  in
  climb start_rps 0. [] 0
