(* Consistent hashing with virtual nodes.  Each shard contributes
   [vnodes] points on a 62-bit circle; a key routes to the shard owning
   the first point at or after the key's own hash (wrapping).  With
   enough virtual nodes per shard the arc lengths even out, so load
   balances within a few percent, and adding or removing one shard only
   moves the keys whose arcs that shard's points covered — about 1/N of
   the keyspace — instead of reshuffling everything (the classic
   [hash mod N] failure mode). *)

type t = {
  names : string array;  (* distinct shard names, sorted *)
  points : (int * int) array;  (* (hash, index into names), sorted *)
  vnodes : int;
}

(* First 8 bytes of the MD5, big-endian, masked positive: deterministic
   across runs and processes (no [Hashtbl.hash], whose value is not a
   stable contract). *)
let point_hash s =
  let d = Digest.string s in
  let h = ref 0 in
  for i = 0 to 7 do
    h := (!h lsl 8) lor Char.code d.[i]
  done;
  !h land max_int

let create ?(vnodes = 64) names =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let names =
    let sorted = List.sort_uniq String.compare names in
    if sorted = [] then invalid_arg "Ring.create: no shards";
    if List.length sorted <> List.length names then
      invalid_arg "Ring.create: duplicate shard names";
    Array.of_list sorted
  in
  let points =
    Array.init
      (Array.length names * vnodes)
      (fun i ->
        let shard = i / vnodes and replica = i mod vnodes in
        (point_hash (Printf.sprintf "%s\x00%d" names.(shard) replica), shard))
  in
  (* Tie-break equal hashes by shard index so the ring order is a pure
     function of the member set. *)
  Array.sort compare points;
  { names; points; vnodes }

let shards t = Array.to_list t.names

let vnodes t = t.vnodes

(* Index of the first point with hash >= h, wrapping to 0 past the
   end. *)
let successor_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key =
  let i = successor_index t (point_hash key) in
  t.names.(snd t.points.(i))

let successors t key =
  let n = Array.length t.points in
  let start = successor_index t (point_hash key) in
  let seen = Array.make (Array.length t.names) false in
  let out = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < Array.length t.names && !i < n do
    let shard = snd t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      out := t.names.(shard) :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

(* Stable shard index: position in the sorted member list.  The chaos
   spec's [slowshard@IDX] clauses address shards by this number, so a
   spec written for "shard 0" means the same process on every run. *)
let position t name =
  let rec find i =
    if i >= Array.length t.names then None
    else if String.equal t.names.(i) name then Some i
    else find (i + 1)
  in
  find 0
