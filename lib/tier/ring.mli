(** Consistent-hash ring with virtual nodes.

    The router hashes each request's cache digest onto the ring to pick
    its owner shard, so the same digest always lands on the same shard
    (maximising that shard's cache hit rate) and membership changes only
    remap ~1/N of the keyspace.  Hashing is MD5-based and deterministic
    across runs and processes. *)

type t

val create : ?vnodes:int -> string list -> t
(** A ring over the given shard names, [vnodes] points each (default
    64).  Raises [Invalid_argument] on an empty or duplicated name list
    or [vnodes < 1]. *)

val shards : t -> string list
(** Member names, sorted. *)

val vnodes : t -> int

val lookup : t -> string -> string
(** The shard owning [key]. *)

val successors : t -> string -> string list
(** All shards in ring order starting from [key]'s owner, each listed
    once — the owner first, then the fallback order for routing around
    an unhealthy shard. *)

val position : t -> string -> int option
(** Index of a shard in the sorted member list; [None] for non-members.
    The stable number chaos specs address with [slowshard@IDX]. *)
