(** The tier router: consistent-hash request routing over a fleet of
    shards, with a tiered cache in front and a resilience layer on the
    router->shard path.

    Each digest-addressed request ({!Lcmm_service.Engine.route_digest})
    is answered from the first tier that has it: the router's in-memory
    LRU, the owner shard's cache (probed with [cache_get]), a sibling
    shard's cache (peer fill — the hit is copied back into the owner so
    one shard's compile warms the fleet), and finally compute forwarded
    to the owner.  An unreachable owner fails over to the next shard in
    ring order; an overloaded owner sheds the request with a structured
    ["overloaded"] error — backpressure pushes load back to the client
    instead of amplifying it onto the surviving shards.

    The resilience layer, all off by default:
    {ul
    {- {b Integrity}: always on — forwarded requests carry the route
       digest as [id] and ask for a ["sum"] digest of the reply
       payload; a reply that fails validation (wrong echo, bad sum,
       unparsable) is counted, charged to the shard's breaker and
       retried, never served.}
    {- {b Retries}: [retries] re-sends per candidate shard after
       transport failures or invalid replies, with doubling backoff
       capped at 8x the base and at the remaining deadline.}
    {- {b Hedging}: when a compute attempt has been quiet for [hedge_ms]
       (or the [hedge_quantile] of observed call latency), the same
       request races the next shard in ring order; the first reply that
       passes validation wins.}
    {- {b Deadlines}: the forwarded envelope carries the budget
       remaining now, not the original figure — probes, backoff and
       earlier attempts all spend from the same purse, and an expired
       budget is answered [deadline exceeded] by the router itself.}
    {- {b Health probes}: with [probe_interval_ms], a background thread
       probes every non-[`Up] shard ({!Shard.probe}) so shards recover
       without waiting for live traffic to test the half-open circuit.}
    {- {b Chaos}: a {!Chaos.t} interposes seeded transport faults on
       every digest-addressed shard call (and only those — health
       probes, stats and drain flushes pass untouched).}}

    With [timing] off and the resilience knobs at their defaults the
    rendered responses are byte-identical to a single-process
    [lcmm serve] answering the same requests. *)

type t

val create :
  ?router_cache_entries:int -> ?router_cache_mb:int -> ?deadline_ms:float ->
  ?timing:bool -> ?retries:int -> ?retry_backoff_ms:float ->
  ?hedge_ms:float -> ?hedge_quantile:float -> ?call_timeout_ms:float ->
  ?probe_interval_ms:float -> ?chaos:Chaos.t -> ring:Ring.t ->
  shards:Shard.t list -> unit -> t
(** Router over [shards]; every name in [ring] must have a shard
    (raises [Invalid_argument] otherwise).  The front LRU holds up to
    [router_cache_entries] (default 512) payloads within
    [router_cache_mb] (default 64) MiB.  [deadline_ms] is the default
    budget for requests that carry none of their own.  [retries]
    (default 0) extra attempts per candidate with [retry_backoff_ms]
    (default 25) base backoff; [hedge_ms] or [hedge_quantile] (in
    (0,1)) enable hedging; [call_timeout_ms] bounds every shard call
    (also the time an injected hang burns); [probe_interval_ms] starts
    the background health prober.  Raises [Invalid_argument] on
    non-positive knobs ([retries]/[retry_backoff_ms] may be 0). *)

val set_chaos : t -> Chaos.t option -> unit
(** Swap the chaos injector at runtime (the bench resets counters per
    intensity rung by installing a fresh one). *)

val chaos : t -> Chaos.t option

val handle_line : t -> string -> string
(** One NDJSON request line in, one newline-terminated response line
    out; never raises.  Serve it with
    {!Lcmm_service.Server.serve_channels_with} or
    {!Lcmm_service.Server.serve_unix_socket_with}.  While draining,
    everything except [stats] is refused with a structured
    ["unavailable"] error. *)

val stats_payload : t -> Dnn_serial.Json.t
(** The extended [stats] body: the router's own counters (router /
    shard / peer-fill hits, sheds, computes, retries, hedges, invalid
    replies, LRU occupancy, ring shape), fleet-wide cache totals
    aggregated over the shards that answered, each shard's health plus
    its own [stats] payload, and the chaos injector's counters when one
    is installed. *)

val counter_list : t -> (string * int) list
(** The router's request counters as a flat association list, in a
    fixed order — the bench fingerprints these. *)

val begin_drain : t -> unit
(** Stop admitting new work (except [stats]).  In-flight requests keep
    running. *)

val draining : t -> bool

val inflight : t -> int
(** Requests admitted and not yet answered. *)

val await_idle : ?timeout_s:float -> t -> bool
(** Wait (default 10 s) for the in-flight count to reach zero; [false]
    on timeout. *)

val flush_cache : t -> int
(** Push every front-LRU entry to its owning shard with [cache_put],
    hottest first, so a restarted tier warms from the shard caches.
    Returns the number of entries flushed; failures are logged and
    skipped.  Never chaos-faulted. *)

val drain : ?timeout_s:float -> t -> int
(** {!begin_drain}, {!await_idle}, then {!flush_cache} (returning its
    count).  The SIGTERM path: stop admitting, finish in-flight work,
    save the cache. *)

val shards : t -> Shard.t list
(** In ring order. *)

val shutdown : t -> unit
(** Stop the health prober, then every shard ({!Shard.stop}):
    terminate, reap, remove socket files. *)
