(** The tier router: consistent-hash request routing over a fleet of
    shards, with a tiered cache in front.

    Each digest-addressed request ({!Lcmm_service.Engine.route_digest})
    is answered from the first tier that has it: the router's in-memory
    LRU, the owner shard's cache (probed with [cache_get]), a sibling
    shard's cache (peer fill — the hit is copied back into the owner so
    one shard's compile warms the fleet), and finally compute forwarded
    to the owner.  An unreachable owner fails over to the next shard in
    ring order; an overloaded owner sheds the request with a structured
    ["overloaded"] error — backpressure pushes load back to the client
    instead of amplifying it onto the surviving shards.

    With [timing] off the rendered responses are byte-identical to a
    single-process [lcmm serve] answering the same requests. *)

type t

val create :
  ?router_cache_entries:int -> ?router_cache_mb:int -> ?deadline_ms:float ->
  ?timing:bool -> ring:Ring.t -> shards:Shard.t list -> unit -> t
(** Router over [shards]; every name in [ring] must have a shard
    (raises [Invalid_argument] otherwise).  The front LRU holds up to
    [router_cache_entries] (default 512) payloads within
    [router_cache_mb] (default 64) MiB.  [deadline_ms] is injected into
    forwarded requests that carry none of their own. *)

val handle_line : t -> string -> string
(** One NDJSON request line in, one newline-terminated response line
    out; never raises.  Serve it with
    {!Lcmm_service.Server.serve_channels_with} or
    {!Lcmm_service.Server.serve_unix_socket_with}. *)

val stats_payload : t -> Dnn_serial.Json.t
(** The extended [stats] body: the router's own counters (router /
    shard / peer-fill hits, sheds, computes, LRU occupancy, ring
    shape), fleet-wide cache totals aggregated over the shards that
    answered, and each shard's health plus its own [stats] payload. *)

val shards : t -> Shard.t list
(** In ring order. *)

val shutdown : t -> unit
(** Stop every shard ({!Shard.stop}): terminate, reap, remove socket
    files. *)
