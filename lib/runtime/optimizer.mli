(** DRAM communication-schedule search.

    Proposes transfer orders by beam search over the tenants' static
    transfer profiles (per-channel busy timelines, minimizing exposed
    stall) plus deterministic heuristic orders (high-priority-first,
    least-laxity, shortest-first), evaluates every candidate *exactly*
    with {!Engine.run} alongside the [Greedy] and [Edf] baselines, and
    returns the best by (makespan, then high-priority-tenant slowdown,
    then candidate index).  Because the baselines are in the portfolio,
    the chosen schedule's makespan is [<= min(greedy, edf)] by
    construction — the invariant the ci gate and the schedule-conserve
    oracle check.  Deterministic for fixed inputs; candidate evaluation
    fans out on the domain pool when one is given. *)

type outcome = {
  result : Engine.result;          (** The winning candidate's exact run. *)
  chosen : string;                 (** Its label ("greedy", "edf", "orderN"). *)
  hp_slowdown : float;             (** Winner's worst slowdown over the
                                       highest-priority tenants. *)
  candidates : (string * float) list;
      (** Every evaluated candidate with its makespan, in evaluation
          order (baselines first, searched orders after). *)
}

val search :
  ?pool:Lcmm.Pool.t ->
  ?beam_width:int ->
  ?hp_first:bool ->
  arbitration:Arbiter.t ->
  channels:int ->
  ?assign:(owner:int -> target:int -> Engine.kind -> int) ->
  ?make_faults:(unit -> Fault.Injector.t option) ->
  isos:Sim.Engine.run array ->
  Engine.tenant_input array ->
  outcome
(** [search ~arbitration ~channels ~isos inputs] — [isos.(i)] must be
    tenant [i]'s isolated run (same plan as [inputs.(i)]); it anchors
    the static release/deadline estimates and the slowdown denominator.
    [make_faults] is called once per candidate evaluation so each gets a
    fresh injector (fault decisions are seed+key pure, so candidates
    see identical fault schedules).  [beam_width] defaults to 4.

    Only candidates whose makespan is at or below [min(greedy, edf)] are
    selectable.  Within that set, [hp_first] (default false; the runtime
    sets it under priority arbitration) minimizes the high-priority
    slowdown before makespan; otherwise makespan comes first. *)
