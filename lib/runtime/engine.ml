module Metric = Lcmm.Metric
module Latency = Accel.Latency
module NM = Sim.Node_model
module EQ = Sim.Event_queue

(* What a tenant resumes with after an SRAM bank loss: the degraded
   allocation and PDG from the framework's evict-and-replan pass, plus
   the accounting the report surfaces. *)
type degraded_plan = {
  deg_on_chip : Metric.Item_set.t;
  deg_prefetch : Lcmm.Prefetch.t option;
  deg_pinned_bytes : int;     (* what the degraded plan pins *)
  deg_evicted_bytes : int;    (* emergency-evicted virtual buffer bytes *)
  deg_surviving_bytes : int;  (* capacity the replan was solved against *)
}

type tenant_input = {
  label : string;
  metric : Metric.t;
  on_chip : Metric.Item_set.t;
  prefetch : Lcmm.Prefetch.t option;
  arrival : float;
  priority : int;
  slack : int -> float;
  replan : (lost_bytes:int -> degraded_plan option) option;
}

type fault_stats = {
  retries : int;              (* failed transfer attempts that were retried *)
  stalls : int;               (* injected transfer-start stalls *)
  degraded : int;             (* bank-loss events absorbed by replanning *)
  evicted_bytes : int;
  pinned_after : int option;  (* pinned bytes after the last degrade *)
  surviving_bytes : int option;
  aborted : string option;
}

type tenant_run = {
  label : string;
  timings : Sim.Engine.node_timing array;
  finish : float;
  latency : float;
  prefetch_wait : float;
  wt_channel_busy : float;
  ddr_bytes : float;
  faults : fault_stats;
}

type segment = { seg_start : float; seg_end : float; utilization : float }

(* --- transfers --- *)

type kind = Prefetch_load | Demand_load | Weight_stream_x

(* Final state of every transfer the run created — the schedule
   optimizer's evaluation signal and the schedule-conserve oracle's
   evidence (per-channel byte conservation, release-before-start). *)
type xfer_log = {
  log_owner : int;
  log_target : int;
  log_kind : kind;
  log_channel : int;
  log_bytes : float;
  log_load : float;
  log_deadline : float;
  log_released : float;       (* queue-entry instant (PDG release) *)
  log_started : float;        (* first instant granted bandwidth; -1 if never *)
  log_finished : float;       (* finish instant; -1 if cancelled/aborted *)
}

type result = {
  tenants : tenant_run array;
  makespan : float;
  timeline : segment list;
  channels : int;
  channel_timelines : segment list array;
  transfers : xfer_log list;
}

type xfer = {
  key : int;
  owner : int;
  target : int;
  kind : kind;
  channel : int;           (* DDR channel the transfer is bound to *)
  xrank : float;           (* searched-order rank (Optimized); 0 otherwise *)
  load : float;            (* seconds at full bandwidth *)
  bytes : float;
  released_at : float;
  mutable started_at : float; (* first instant with positive rate; -1 = never *)
  deadline : float;
  stall : float;           (* injected head-of-channel stall; 0 = none *)
  fails : int;             (* planned transient failures before success *)
  mutable attempt : int;   (* failures consumed so far *)
  mutable blocked_until : float; (* stalled / backing off until this time *)
  mutable work : float;    (* remaining seconds at full bandwidth *)
  mutable rate : float;
  mutable settled : float; (* time [work] was last brought up to date *)
  mutable eta : float;     (* projected finish under [rate]; infinity at 0 *)
  mutable finished : bool;
  mutable finished_at : float;
}

(* --- per-tenant execution state --- *)

type exec = {
  exec_id : int;
  exec_start : float;
  exec_if : float;
  exec_of : float;
  exec_stream : xfer option;
}

type stage =
  | Entering           (* release node [next]'s transfers at [clock] *)
  | Awaiting of int    (* waiting for the node's weight transfers *)
  | Executing of exec
  | Finished

type tstate = {
  input : tenant_input;
  index : int;
  profiles : Latency.profile array;
  count : int;
  released : Lcmm.Prefetch.edge list array;
  edge_flags : bool array;
  weight_ready : float array;
  pending_w : int array;
  timings : Sim.Engine.node_timing array;
  queue : xfer Queue.t;      (* released, not yet on the channel *)
  mutable current : xfer option;
  mutable stage : stage;
  mutable next : int;
  mutable clock : float;
  mutable prefetch_wait : float;
  mutable wt_busy : float;
  mutable ddr : float;
  (* Degraded-mode state: the plan the tenant currently runs under.
     Identical to [input]'s until a bank loss swaps it. *)
  mutable cur_on_chip : Metric.Item_set.t;
  mutable cur_prefetch : Lcmm.Prefetch.t option;
  mutable lost_bytes : int;
  (* Fault counters. *)
  mutable retries : int;
  mutable stall_events : int;
  mutable degraded : int;
  mutable evicted_bytes : int;
  mutable pinned_after : int option;
  mutable surviving : int option;
  mutable aborted : string option;
}

let fraction ts id = NM.pinned_fraction ts.input.metric ~on_chip:ts.cur_on_chip id

let pinned ts id = NM.pinned_weight ts.input.metric ~on_chip:ts.cur_on_chip id

let init_tenant index (input : tenant_input) =
  let profiles = input.metric.Metric.profiles in
  let n = Array.length profiles in
  let released =
    NM.released_edges ?prefetch:input.prefetch input.metric
      ~on_chip:input.on_chip n
  in
  { input;
    index;
    profiles;
    count = n;
    released;
    edge_flags = NM.has_edge released n;
    weight_ready = Array.make n 0.;
    pending_w = Array.make n 0;
    timings =
      Array.make n
        { Sim.Engine.node_id = 0; start = 0.; finish = 0.; wait = 0.;
          binding = Sim.Engine.Compute };
    queue = Queue.create ();
    current = None;
    stage = Entering;
    next = 0;
    clock = input.arrival;
    prefetch_wait = 0.;
    wt_busy = 0.;
    ddr = 0.;
    cur_on_chip = input.on_chip;
    cur_prefetch = input.prefetch;
    lost_bytes = 0;
    retries = 0;
    stall_events = 0;
    degraded = 0;
    evicted_bytes = 0;
    pinned_after = None;
    surviving = None;
    aborted = None }

let run ~arbitration ~scheduler ?(channels = 1) ?assign ?rank ?faults inputs =
  let channels = max 1 channels in
  (* Channel of a transfer: the assignment callback's pick, clamped;
     everything lands on channel 0 when unassigned or single-channel —
     the aggregate fluid-bus model. *)
  let channel_of ~owner ~target kind =
    if channels = 1 then 0
    else
      match assign with
      | None -> 0
      | Some f ->
        let c = f ~owner ~target kind in
        if c < 0 || c >= channels then 0 else c
  in
  let rank_of ~owner ~target kind =
    match rank with None -> 0. | Some f -> f ~owner ~target kind
  in
  let tenants = Array.mapi init_tenant inputs in
  (* Tenants whose wake-up candidates may have changed since the last
     heap flush.  Every mutation that can move a candidate time sets the
     owner's flag; [flush_dirty] re-pushes candidates before each
     [next_event], so the heap always holds every live candidate. *)
  let dirty = Array.make (Array.length tenants) true in
  let heap = EQ.create () in
  let key_counter = ref 0 in
  (* Per-key bandwidth state, indexed by transfer key.  Entries are only
     non-default inside one [assign_rates] round (set, read, cleared),
     so lookups that used to be [List.assoc_opt] are O(1). *)
  let rate_tbl = ref (Array.make 1024 0.) in
  let chosen_tbl = ref (Array.make 1024 false) in
  let fresh_key () =
    incr key_counter;
    let k = !key_counter in
    if k >= Array.length !rate_tbl then begin
      let n = 2 * Array.length !rate_tbl in
      let r = Array.make n 0. in
      Array.blit !rate_tbl 0 r 0 (Array.length !rate_tbl);
      rate_tbl := r;
      let c = Array.make n false in
      Array.blit !chosen_tbl 0 c 0 (Array.length !chosen_tbl);
      chosen_tbl := c
    end;
    k
  in
  let now = ref 0. in
  let segments = ref [] in
  let channel_segments = Array.make channels [] in
  let all_xfers = ref [] in
  let enqueue ts ~kind ~target ~load ~bytes ~deadline =
    let key = fresh_key () in
    let stall, fails =
      match faults with
      | None -> (0., 0)
      | Some inj ->
        (Fault.Injector.stall_seconds inj ~key,
         Fault.Injector.planned_failures inj ~key)
    in
    let x =
      { key; owner = ts.index; target; kind;
        channel = channel_of ~owner:ts.index ~target kind;
        xrank = rank_of ~owner:ts.index ~target kind;
        load; bytes; released_at = !now; started_at = -1.;
        deadline; stall; fails; attempt = 0; blocked_until = 0.;
        work = load; rate = 0.; settled = 0.; eta = infinity;
        finished = false; finished_at = 0. }
    in
    all_xfers := x :: !all_xfers;
    Queue.add x ts.queue;
    (match kind with
    | Prefetch_load | Demand_load -> ts.pending_w.(target) <- ts.pending_w.(target) + 1
    | Weight_stream_x -> ());
    x
  in
  (* Move queue heads onto the (per-tenant serial) channel. *)
  let start_jobs () =
    Array.fold_left
      (fun changed ts ->
        if ts.current = None && not (Queue.is_empty ts.queue) then begin
          let x = Queue.pop ts.queue in
          x.settled <- !now;
          if x.stall > 0. then begin
            (* Injected head-of-channel stall: the transfer holds the
               channel but is ineligible until the stall passes. *)
            x.blocked_until <- !now +. x.stall;
            ts.stall_events <- ts.stall_events + 1
          end;
          ts.current <- Some x;
          dirty.(ts.index) <- true;
          true
        end
        else changed)
      false tenants
  in
  (* One zero-time step of a tenant's node state machine; returns whether
     it made progress.  The arithmetic below mirrors Sim.Engine.simulate
     through Sim.Node_model call for call, which is what makes the
     single-tenant co-simulation bit-identical to the isolated engine. *)
  let progress ts =
    match ts.stage with
    | Finished -> false
    | Entering ->
      if ts.clock > !now then false
      else if ts.next >= ts.count then begin
        ts.stage <- Finished;
        true
      end
      else begin
        let id = ts.next in
        List.iter
          (fun e ->
            let target = e.Lcmm.Prefetch.target in
            let frac = fraction ts target in
            ignore
              (enqueue ts ~kind:Prefetch_load ~target
                 ~load:(e.Lcmm.Prefetch.load_seconds *. frac)
                 ~bytes:(float_of_int ts.profiles.(target).Latency.wt_once_bytes *. frac)
                 ~deadline:(ts.clock +. ts.input.slack target)))
          ts.released.(id);
        (match
           NM.demand_load ts.input.metric ~on_chip:ts.cur_on_chip
             ~has_edge:ts.edge_flags ts.profiles.(id)
         with
        | None -> ()
        | Some load ->
          ignore
            (enqueue ts ~kind:Demand_load ~target:id ~load
               ~bytes:(float_of_int ts.profiles.(id).Latency.wt_once_bytes
                      *. fraction ts id)
               ~deadline:ts.clock));
        ts.stage <- Awaiting id;
        true
      end
    | Awaiting id ->
      let is_pinned = pinned ts id in
      if is_pinned && ts.pending_w.(id) > 0 then false
      else begin
        let ready = if is_pinned then ts.weight_ready.(id) else 0. in
        let start = max ts.clock ready in
        if start > !now then false
        else begin
          let wait = start -. ts.clock in
          ts.prefetch_wait <- ts.prefetch_wait +. wait;
          let p = ts.profiles.(id) in
          let on_chip = ts.cur_on_chip in
          let if_t = NM.if_time ~on_chip p in
          let of_t = NM.of_time ~on_chip p in
          let streamed = p.Latency.wt_term *. (1. -. fraction ts id) in
          let stream =
            if streamed <= 0. then None
            else
              Some
                (enqueue ts ~kind:Weight_stream_x ~target:id ~load:streamed
                   ~bytes:(float_of_int p.Latency.wt_stream_bytes
                          *. (1. -. fraction ts id))
                   ~deadline:start)
          in
          ts.stage <-
            Executing
              { exec_id = id; exec_start = start; exec_if = if_t;
                exec_of = of_t; exec_stream = stream };
          true
        end
      end
    | Executing e -> (
      match e.exec_stream with
      | Some x when not x.finished -> false
      | _ ->
        let wt_component =
          match e.exec_stream with
          | None -> 0.
          | Some x -> x.finished_at -. e.exec_start
        in
        let p = ts.profiles.(e.exec_id) in
        let binding, duration =
          NM.duration_and_binding ~latc:p.Latency.latc ~if_time:e.exec_if
            ~wt_component ~of_time:e.exec_of
        in
        let finish = e.exec_start +. duration in
        if finish > !now then false
        else begin
          let on_chip = ts.cur_on_chip in
          ts.timings.(e.exec_id) <-
            { Sim.Engine.node_id = e.exec_id; start = e.exec_start; finish;
              wait = ts.timings.(e.exec_id).Sim.Engine.wait; binding };
          ts.ddr <-
            ts.ddr
            +. float_of_int (NM.if_stream_bytes ~on_chip p)
            +. float_of_int (NM.of_stream_bytes ~on_chip p);
          ts.clock <- finish;
          ts.next <- e.exec_id + 1;
          ts.stage <- Entering;
          true
        end)
  in
  (* Record the stall of a node before it starts (matching the isolated
     engine's [wait] field): stash it when the Awaiting stage resolves.
     The timings write above preserves it. *)
  let note_wait ts id wait =
    ts.timings.(id) <- { ts.timings.(id) with Sim.Engine.wait }
  in
  (* Wire note_wait into the Awaiting transition without duplicating the
     stage logic: wrap progress. *)
  let progress ts =
    match ts.stage with
    | Awaiting id ->
      let before_clock = ts.clock in
      let changed = progress ts in
      (if changed then
         match ts.stage with
         | Executing e when e.exec_id = id ->
           note_wait ts id (e.exec_start -. before_clock)
         | _ -> ());
      changed
    | _ -> progress ts
  in
  (* Hard tenant abort: drop every queued and in-flight transfer, pin
     the clock at the abort instant and finish the tenant.  Executed
     nodes keep their timings; the report surfaces the reason. *)
  let abort ts reason =
    dirty.(ts.index) <- true;
    ts.aborted <- Some reason;
    Queue.clear ts.queue;
    ts.current <- None;
    ts.clock <- Float.max ts.clock !now;
    ts.stage <- Finished
  in
  (* SRAM bank loss: enter degraded mode.  The replan callback evicts
     pinned virtual buffers by reverse benefit-density and re-solves the
     tenant at the surviving capacity (Framework.degrade); here we swap
     the live plan and resume from the current node.  Prefetched but
     unconsumed weights are conservatively treated as lost (they may
     have lived in the failed bank): pending transfers are cancelled and
     future nodes refetch under the new plan — prefetched when the new
     PDG still releases them, demand-loaded otherwise. *)
  let degrade ts =
    match ts.input.replan with
    | None ->
      abort ts
        (Printf.sprintf "bank loss (%d bytes) without replan support"
           ts.lost_bytes)
    | Some f -> (
      match f ~lost_bytes:ts.lost_bytes with
      | None -> abort ts "bank loss: no feasible degraded plan"
      | Some d ->
        dirty.(ts.index) <- true;
        (* Keep only the executing node's streamed-weight transfer: the
           node started before the fault and carries its own state. *)
        let keep_stream =
          match ts.stage with Executing e -> e.exec_stream | _ -> None
        in
        let keep x =
          match keep_stream with Some k -> k == x | None -> false
        in
        let kept =
          Queue.fold (fun acc x -> if keep x then x :: acc else acc) [] ts.queue
        in
        Queue.clear ts.queue;
        List.iter (fun x -> Queue.add x ts.queue) (List.rev kept);
        (match ts.current with
        | Some x when not (keep x) -> ts.current <- None
        | _ -> ());
        ts.cur_on_chip <- d.deg_on_chip;
        ts.cur_prefetch <- d.deg_prefetch;
        (* A tenant caught between release and execution re-enters its
           node: the weights it was waiting for were just cancelled. *)
        (match ts.stage with
        | Awaiting id ->
          ts.stage <- Entering;
          ts.next <- id;
          ts.clock <- Float.max ts.clock !now
        | Entering | Executing _ | Finished -> ());
        let resume =
          match ts.stage with
          | Entering -> ts.next
          | Executing e -> e.exec_id + 1
          | Finished -> ts.count
          | Awaiting _ -> assert false
        in
        let released =
          NM.released_edges ?prefetch:d.deg_prefetch ts.input.metric
            ~on_chip:d.deg_on_chip ts.count
        in
        Array.iteri
          (fun s edges ->
            ts.released.(s) <- (if s < resume then [] else edges))
          released;
        let flags = NM.has_edge ts.released ts.count in
        Array.blit flags 0 ts.edge_flags 0 ts.count;
        Array.fill ts.pending_w 0 ts.count 0;
        Array.fill ts.weight_ready 0 ts.count 0.;
        ts.degraded <- ts.degraded + 1;
        ts.evicted_bytes <- ts.evicted_bytes + d.deg_evicted_bytes;
        ts.pinned_after <- Some d.deg_pinned_bytes;
        ts.surviving <- Some d.deg_surviving_bytes)
  in
  (* Discrete fault events (bank losses, aborts) from the spec timeline,
     fired once their instant is reached. *)
  let pending_events =
    ref
      (match faults with
      | None -> []
      | Some inj -> Fault.Injector.events inj)
  in
  let fire_due_events () =
    let fired = ref false in
    let rec loop () =
      match !pending_events with
      | ev :: rest when Fault.Injector.event_time ev <= !now ->
        pending_events := rest;
        fired := true;
        (match ev with
        | Fault.Injector.Bank_loss { tenant; bytes; _ } ->
          if tenant >= 0 && tenant < Array.length tenants then begin
            let ts = tenants.(tenant) in
            if ts.stage <> Finished then begin
              ts.lost_bytes <- ts.lost_bytes + bytes;
              degrade ts
            end
          end
        | Fault.Injector.Abort { tenant; at } ->
          if tenant >= 0 && tenant < Array.length tenants then begin
            let ts = tenants.(tenant) in
            if ts.stage <> Finished then
              abort ts
                (Printf.sprintf "injected abort at %.3f ms" (at *. 1e3))
          end);
        loop ()
      | _ -> ()
    in
    loop ();
    !fired
  in
  let on_chip_jobs () =
    Array.to_list tenants
    |> List.filter_map (fun ts ->
           match ts.current with
           | Some x when not x.finished -> Some x
           | _ -> None)
  in
  (* Scheduler picks the eligible subset per DDR channel, the arbiter
     splits that channel's bandwidth stripe over it; everything else is
     preempted (rate 0, channel still held).  With one channel the
     grouping collapses to a single call over all pending transfers —
     float for float the pre-channel aggregate bus. *)
  let assign_rates () =
    let jobs = on_chip_jobs () in
    (* Stalled / backing-off transfers hold their channel but are not
       eligible for bandwidth until the block passes. *)
    let eligible_jobs =
      List.filter (fun x -> x.blocked_until <= !now) jobs
    in
    let pending_of x =
      { Scheduler.key = x.key; deadline = x.deadline;
        priority = inputs.(x.owner).priority; rank = x.xrank }
    in
    let chosen =
      if channels = 1 then
        Scheduler.eligible scheduler (List.map pending_of eligible_jobs)
      else begin
        (* Group by channel preserving arrival order, schedule each
           channel independently. *)
        let by_ch = Array.make channels [] in
        List.iter
          (fun x -> by_ch.(x.channel) <- x :: by_ch.(x.channel))
          eligible_jobs;
        let acc = ref [] in
        for c = channels - 1 downto 0 do
          match by_ch.(c) with
          | [] -> ()
          | js ->
            let ps = List.rev_map pending_of js in
            acc := Scheduler.eligible scheduler ps @ !acc
        done;
        !acc
      end
    in
    (* Membership and rate lookups go through key-indexed tables instead
       of [List.mem]/[List.assoc_opt]; entries are cleared again at the
       end of the round so stale keys always read as not-chosen/0. *)
    let ctbl = !chosen_tbl in
    List.iter (fun k -> ctbl.(k) <- true) chosen;
    let contenders =
      List.filter_map
        (fun x ->
          if ctbl.(x.key) then Some (x.key, inputs.(x.owner).priority)
          else None)
        eligible_jobs
    in
    let rtbl = !rate_tbl in
    (if channels = 1 then Arbiter.rates_into arbitration contenders rtbl
     else begin
       (* Arbitrate each channel's contenders separately, then scale by
          the channel's 1/C bandwidth stripe: rates stay fractions of
          the full aggregate bandwidth, so downstream ETA math is
          untouched. *)
       let by_ch = Array.make channels [] in
       List.iter
         (fun x -> if ctbl.(x.key) then by_ch.(x.channel) <- x :: by_ch.(x.channel))
         eligible_jobs;
       let stripe = 1. /. float_of_int channels in
       Array.iter
         (fun js ->
           match js with
           | [] -> ()
           | _ ->
             let cs =
               List.rev_map (fun x -> (x.key, inputs.(x.owner).priority)) js
             in
             Arbiter.rates_into arbitration cs rtbl;
             List.iter (fun (k, _) -> rtbl.(k) <- rtbl.(k) *. stripe) cs)
         by_ch
     end);
    (* A DDR droop window scales every granted rate; multiplying by the
       1.0 no-fault factor is skipped outright so the fault-free float
       path stays bit-identical. *)
    let factor =
      match faults with
      | None -> 1.
      | Some inj -> Fault.Injector.droop_factor inj ~now:!now
    in
    List.iter
      (fun x ->
        let r = rtbl.(x.key) in
        let r = if factor = 1. then r else r *. factor in
        if r <> x.rate then begin
          (* Settle the work done at the old rate before switching; a
             transfer whose rate never changes keeps its exact
             [settled + work/rate] finish time, which single-tenant
             exactness depends on. *)
          x.work <- x.work -. ((!now -. x.settled) *. x.rate);
          if x.work < 0. then x.work <- 0.;
          x.settled <- !now;
          x.rate <- r;
          if r > 0. && x.started_at < 0. then x.started_at <- !now;
          x.eta <-
            (if r > 0. then (if x.work <= 0. then !now else !now +. (x.work /. r))
             else infinity);
          dirty.(x.owner) <- true
        end)
      jobs;
    List.iter (fun k -> ctbl.(k) <- false) chosen;
    List.iter (fun (k, _) -> rtbl.(k) <- 0.) contenders
  in
  let complete_due () =
    Array.fold_left
      (fun changed ts ->
        match ts.current with
        | Some x when (not x.finished) && x.rate > 0. && x.eta <= !now ->
          dirty.(ts.index) <- true;
          if x.attempt < x.fails then begin
            (* Transient failure: the attempt's bytes moved over the bus
               but the payload is bad.  Retry after a capped exponential
               backoff with seeded jitter; past the retry budget the
               tenant aborts. *)
            let at = x.eta in
            x.attempt <- x.attempt + 1;
            ts.wt_busy <- ts.wt_busy +. x.load;
            ts.ddr <- ts.ddr +. x.bytes;
            (match faults with
            | Some inj when x.attempt <= Fault.Injector.max_retries inj ->
              ts.retries <- ts.retries + 1;
              x.work <- x.load;
              x.settled <- at;
              x.rate <- 0.;
              x.eta <- infinity;
              x.blocked_until <-
                at
                +. Fault.Injector.backoff_seconds inj ~key:x.key
                     ~attempt:(x.attempt - 1)
            | Some _ | None ->
              abort ts
                (Printf.sprintf
                   "transfer to node %d failed %d times (retry budget \
                    exhausted)"
                   x.target x.attempt));
            true
          end
          else begin
            x.finished <- true;
            x.finished_at <- x.eta;
            x.work <- 0.;
            ts.current <- None;
            ts.wt_busy <- ts.wt_busy +. x.load;
            ts.ddr <- ts.ddr +. x.bytes;
            (match x.kind with
            | Prefetch_load ->
              ts.weight_ready.(x.target) <- x.finished_at;
              ts.pending_w.(x.target) <- ts.pending_w.(x.target) - 1
            | Demand_load ->
              ts.weight_ready.(x.target) <-
                max ts.weight_ready.(x.target) x.finished_at;
              ts.pending_w.(x.target) <- ts.pending_w.(x.target) - 1
            | Weight_stream_x -> ());
            true
          end
        | _ -> changed)
      false tenants
  in
  let all_finished () =
    Array.for_all (fun ts -> ts.stage = Finished) tenants
  in
  (* Exhaust every zero-time transition at the current instant. *)
  let settle_instant () =
    let continue = ref true in
    while !continue do
      let c = ref false in
      if fire_due_events () then c := true;
      Array.iter
        (fun ts ->
          if progress ts then begin
            dirty.(ts.index) <- true;
            c := true
          end)
        tenants;
      if start_jobs () then c := true;
      assign_rates ();
      if complete_due () then c := true;
      continue := !c
    done
  in
  (* Wake-up candidates per tenant, exactly the times the old linear
     scan considered.  Recomputed from current state both when pushing
     and when validating a popped heap entry: an entry whose time no
     longer equals a current candidate is stale and dropped. *)
  let stage_candidate ts =
    match ts.stage with
    | Entering -> ts.clock
    | Executing e -> (
      match e.exec_stream with
      | Some x when not x.finished -> infinity
      | _ ->
        let wt_component =
          match e.exec_stream with
          | None -> 0.
          | Some x -> x.finished_at -. e.exec_start
        in
        let p = ts.profiles.(e.exec_id) in
        let _, duration =
          NM.duration_and_binding ~latc:p.Latency.latc ~if_time:e.exec_if
            ~wt_component ~of_time:e.exec_of
        in
        e.exec_start +. duration)
    | Awaiting _ | Finished -> infinity
  in
  let xfer_candidate ts =
    match ts.current with
    | Some x when (not x.finished) && x.rate > 0. -> x.eta
    | Some x when (not x.finished) && x.blocked_until > !now ->
      x.blocked_until
    | _ -> infinity
  in
  (* Candidates at or before [now] are dead: they stay constant while
     the tenant's state is unchanged and time only moves forward, so
     skipping them matches the old scan's [t > now] filter for good. *)
  let flush_dirty () =
    Array.iteri
      (fun i d ->
        if d then begin
          dirty.(i) <- false;
          let ts = tenants.(i) in
          let s = stage_candidate ts in
          if s > !now && s < infinity then EQ.push heap ~time:s i;
          let x = xfer_candidate ts in
          if x > !now && x < infinity then EQ.push heap ~time:x i
        end)
      dirty
  in
  let next_event () =
    let best = ref infinity in
    let consider t = if t > !now && t < !best then best := t in
    (match faults with
    | None -> ()
    | Some inj ->
      (match !pending_events with
      | ev :: _ -> consider (Fault.Injector.event_time ev)
      | [] -> ());
      let boundary = Fault.Injector.next_droop_boundary inj ~now:!now in
      if boundary < infinity then consider boundary);
    let continue = ref true in
    while !continue do
      match EQ.peek heap with
      | None -> continue := false
      | Some (t, i) ->
        if t <= !now then EQ.drop_min heap
        else if t >= !best then continue := false
        else begin
          let ts = tenants.(i) in
          if t = stage_candidate ts || t = xfer_candidate ts then begin
            (* Valid minimum; it becomes stale (<= now) once time
               advances to it and is collected on a later pop. *)
            best := t;
            continue := false
          end
          else EQ.drop_min heap
        end
    done;
    !best
  in
  let utilization () =
    List.fold_left (fun acc x -> acc +. x.rate) 0. (on_chip_jobs ())
  in
  (* Per-channel summed rates, in the same full-bandwidth units as the
     aggregate timeline: the channel timelines always sum to it, and at
     one channel [channel_utilization ().(0)] IS the aggregate value
     (same left-to-right float fold over the same job list). *)
  let channel_utilization () =
    let u = Array.make channels 0. in
    List.iter (fun x -> u.(x.channel) <- u.(x.channel) +. x.rate)
      (on_chip_jobs ());
    u
  in
  let guard = ref 0 in
  settle_instant ();
  flush_dirty ();
  while not (all_finished ()) do
    incr guard;
    if !guard > 100_000_000 then failwith "Runtime.Engine: event loop stuck";
    let t = next_event () in
    if t = infinity then
      failwith "Runtime.Engine: no runnable event but tenants unfinished";
    let util = utilization () in
    if t > !now then begin
      segments := { seg_start = !now; seg_end = t; utilization = util } :: !segments;
      let cu = channel_utilization () in
      for c = 0 to channels - 1 do
        channel_segments.(c) <-
          { seg_start = !now; seg_end = t; utilization = cu.(c) }
          :: channel_segments.(c)
      done
    end;
    now := t;
    settle_instant ();
    flush_dirty ()
  done;
  let runs =
    Array.map
      (fun ts ->
        { label = ts.input.label;
          timings = ts.timings;
          finish = ts.clock;
          latency = ts.clock -. ts.input.arrival;
          prefetch_wait = ts.prefetch_wait;
          wt_channel_busy = ts.wt_busy;
          ddr_bytes = ts.ddr;
          faults =
            { retries = ts.retries;
              stalls = ts.stall_events;
              degraded = ts.degraded;
              evicted_bytes = ts.evicted_bytes;
              pinned_after = ts.pinned_after;
              surviving_bytes = ts.surviving;
              aborted = ts.aborted } })
      tenants
  in
  let makespan =
    Array.fold_left (fun acc r -> max acc r.finish) 0. runs
  in
  (* Merge adjacent segments with equal utilization. *)
  let merge segs =
    List.fold_left
      (fun acc seg ->
        match acc with
        | prev :: rest
          when prev.utilization = seg.utilization
               && prev.seg_end = seg.seg_start ->
          { prev with seg_end = seg.seg_end } :: rest
        | _ -> seg :: acc)
      [] (List.rev segs)
    |> List.rev
  in
  let timeline = merge !segments in
  let channel_timelines = Array.map merge channel_segments in
  let transfers =
    List.rev_map
      (fun x ->
        { log_owner = x.owner;
          log_target = x.target;
          log_kind = x.kind;
          log_channel = x.channel;
          log_bytes = x.bytes;
          log_load = x.load;
          log_deadline = x.deadline;
          log_released = x.released_at;
          log_started = x.started_at;
          log_finished = (if x.finished then x.finished_at else -1.) })
      !all_xfers
  in
  { tenants = runs; makespan; timeline; channels; channel_timelines;
    transfers }
