module Metric = Lcmm.Metric
module Latency = Accel.Latency
module NM = Sim.Node_model

type tenant_input = {
  label : string;
  metric : Metric.t;
  on_chip : Metric.Item_set.t;
  prefetch : Lcmm.Prefetch.t option;
  arrival : float;
  priority : int;
  slack : int -> float;
}

type tenant_run = {
  label : string;
  timings : Sim.Engine.node_timing array;
  finish : float;
  latency : float;
  prefetch_wait : float;
  wt_channel_busy : float;
  ddr_bytes : float;
}

type segment = { seg_start : float; seg_end : float; utilization : float }

type result = {
  tenants : tenant_run array;
  makespan : float;
  timeline : segment list;
}

(* --- transfers --- *)

type kind = Prefetch_load | Demand_load | Weight_stream_x

type xfer = {
  key : int;
  owner : int;
  target : int;
  kind : kind;
  load : float;            (* seconds at full bandwidth *)
  bytes : float;
  deadline : float;
  mutable work : float;    (* remaining seconds at full bandwidth *)
  mutable rate : float;
  mutable settled : float; (* time [work] was last brought up to date *)
  mutable eta : float;     (* projected finish under [rate]; infinity at 0 *)
  mutable finished : bool;
  mutable finished_at : float;
}

(* --- per-tenant execution state --- *)

type exec = {
  exec_id : int;
  exec_start : float;
  exec_if : float;
  exec_of : float;
  exec_stream : xfer option;
}

type stage =
  | Entering           (* release node [next]'s transfers at [clock] *)
  | Awaiting of int    (* waiting for the node's weight transfers *)
  | Executing of exec
  | Finished

type tstate = {
  input : tenant_input;
  index : int;
  profiles : Latency.profile array;
  count : int;
  released : Lcmm.Prefetch.edge list array;
  edge_flags : bool array;
  weight_ready : float array;
  pending_w : int array;
  timings : Sim.Engine.node_timing array;
  queue : xfer Queue.t;      (* released, not yet on the channel *)
  mutable current : xfer option;
  mutable stage : stage;
  mutable next : int;
  mutable clock : float;
  mutable prefetch_wait : float;
  mutable wt_busy : float;
  mutable ddr : float;
}

let fraction ts id = NM.pinned_fraction ts.input.metric ~on_chip:ts.input.on_chip id

let pinned ts id = NM.pinned_weight ts.input.metric ~on_chip:ts.input.on_chip id

let init_tenant index (input : tenant_input) =
  let profiles = input.metric.Metric.profiles in
  let n = Array.length profiles in
  let released =
    NM.released_edges ?prefetch:input.prefetch input.metric
      ~on_chip:input.on_chip n
  in
  { input;
    index;
    profiles;
    count = n;
    released;
    edge_flags = NM.has_edge released n;
    weight_ready = Array.make n 0.;
    pending_w = Array.make n 0;
    timings =
      Array.make n
        { Sim.Engine.node_id = 0; start = 0.; finish = 0.; wait = 0.;
          binding = Sim.Engine.Compute };
    queue = Queue.create ();
    current = None;
    stage = Entering;
    next = 0;
    clock = input.arrival;
    prefetch_wait = 0.;
    wt_busy = 0.;
    ddr = 0. }

let run ~arbitration ~scheduler inputs =
  let tenants = Array.mapi init_tenant inputs in
  let key_counter = ref 0 in
  let fresh_key () = incr key_counter; !key_counter in
  let now = ref 0. in
  let segments = ref [] in
  let enqueue ts ~kind ~target ~load ~bytes ~deadline =
    let x =
      { key = fresh_key (); owner = ts.index; target; kind; load; bytes;
        deadline; work = load; rate = 0.; settled = 0.; eta = infinity;
        finished = false; finished_at = 0. }
    in
    Queue.add x ts.queue;
    (match kind with
    | Prefetch_load | Demand_load -> ts.pending_w.(target) <- ts.pending_w.(target) + 1
    | Weight_stream_x -> ());
    x
  in
  (* Move queue heads onto the (per-tenant serial) channel. *)
  let start_jobs () =
    Array.fold_left
      (fun changed ts ->
        if ts.current = None && not (Queue.is_empty ts.queue) then begin
          let x = Queue.pop ts.queue in
          x.settled <- !now;
          ts.current <- Some x;
          true
        end
        else changed)
      false tenants
  in
  (* One zero-time step of a tenant's node state machine; returns whether
     it made progress.  The arithmetic below mirrors Sim.Engine.simulate
     through Sim.Node_model call for call, which is what makes the
     single-tenant co-simulation bit-identical to the isolated engine. *)
  let progress ts =
    match ts.stage with
    | Finished -> false
    | Entering ->
      if ts.clock > !now then false
      else if ts.next >= ts.count then begin
        ts.stage <- Finished;
        true
      end
      else begin
        let id = ts.next in
        List.iter
          (fun e ->
            let target = e.Lcmm.Prefetch.target in
            let frac = fraction ts target in
            ignore
              (enqueue ts ~kind:Prefetch_load ~target
                 ~load:(e.Lcmm.Prefetch.load_seconds *. frac)
                 ~bytes:(float_of_int ts.profiles.(target).Latency.wt_once_bytes *. frac)
                 ~deadline:(ts.clock +. ts.input.slack target)))
          ts.released.(id);
        (match
           NM.demand_load ts.input.metric ~on_chip:ts.input.on_chip
             ~has_edge:ts.edge_flags ts.profiles.(id)
         with
        | None -> ()
        | Some load ->
          ignore
            (enqueue ts ~kind:Demand_load ~target:id ~load
               ~bytes:(float_of_int ts.profiles.(id).Latency.wt_once_bytes
                      *. fraction ts id)
               ~deadline:ts.clock));
        ts.stage <- Awaiting id;
        true
      end
    | Awaiting id ->
      let is_pinned = pinned ts id in
      if is_pinned && ts.pending_w.(id) > 0 then false
      else begin
        let ready = if is_pinned then ts.weight_ready.(id) else 0. in
        let start = max ts.clock ready in
        if start > !now then false
        else begin
          let wait = start -. ts.clock in
          ts.prefetch_wait <- ts.prefetch_wait +. wait;
          let p = ts.profiles.(id) in
          let on_chip = ts.input.on_chip in
          let if_t = NM.if_time ~on_chip p in
          let of_t = NM.of_time ~on_chip p in
          let streamed = p.Latency.wt_term *. (1. -. fraction ts id) in
          let stream =
            if streamed <= 0. then None
            else
              Some
                (enqueue ts ~kind:Weight_stream_x ~target:id ~load:streamed
                   ~bytes:(float_of_int p.Latency.wt_stream_bytes
                          *. (1. -. fraction ts id))
                   ~deadline:start)
          in
          ts.stage <-
            Executing
              { exec_id = id; exec_start = start; exec_if = if_t;
                exec_of = of_t; exec_stream = stream };
          true
        end
      end
    | Executing e -> (
      match e.exec_stream with
      | Some x when not x.finished -> false
      | _ ->
        let wt_component =
          match e.exec_stream with
          | None -> 0.
          | Some x -> x.finished_at -. e.exec_start
        in
        let p = ts.profiles.(e.exec_id) in
        let binding, duration =
          NM.duration_and_binding ~latc:p.Latency.latc ~if_time:e.exec_if
            ~wt_component ~of_time:e.exec_of
        in
        let finish = e.exec_start +. duration in
        if finish > !now then false
        else begin
          let on_chip = ts.input.on_chip in
          ts.timings.(e.exec_id) <-
            { Sim.Engine.node_id = e.exec_id; start = e.exec_start; finish;
              wait = ts.timings.(e.exec_id).Sim.Engine.wait; binding };
          ts.ddr <-
            ts.ddr
            +. float_of_int (NM.if_stream_bytes ~on_chip p)
            +. float_of_int (NM.of_stream_bytes ~on_chip p);
          ts.clock <- finish;
          ts.next <- e.exec_id + 1;
          ts.stage <- Entering;
          true
        end)
  in
  (* Record the stall of a node before it starts (matching the isolated
     engine's [wait] field): stash it when the Awaiting stage resolves.
     The timings write above preserves it. *)
  let note_wait ts id wait =
    ts.timings.(id) <- { ts.timings.(id) with Sim.Engine.wait }
  in
  (* Wire note_wait into the Awaiting transition without duplicating the
     stage logic: wrap progress. *)
  let progress ts =
    match ts.stage with
    | Awaiting id ->
      let before_clock = ts.clock in
      let changed = progress ts in
      (if changed then
         match ts.stage with
         | Executing e when e.exec_id = id ->
           note_wait ts id (e.exec_start -. before_clock)
         | _ -> ());
      changed
    | _ -> progress ts
  in
  let on_chip_jobs () =
    Array.to_list tenants
    |> List.filter_map (fun ts ->
           match ts.current with
           | Some x when not x.finished -> Some x
           | _ -> None)
  in
  (* Scheduler picks the eligible subset, arbiter splits bandwidth over
     it; everything else is preempted (rate 0, channel still held). *)
  let assign_rates () =
    let jobs = on_chip_jobs () in
    let pendings =
      List.map
        (fun x ->
          { Scheduler.key = x.key; deadline = x.deadline;
            priority = inputs.(x.owner).priority })
        jobs
    in
    let chosen = Scheduler.eligible scheduler pendings in
    let contenders =
      List.filter_map
        (fun x ->
          if List.mem x.key chosen then
            Some (x.key, inputs.(x.owner).priority)
          else None)
        jobs
    in
    let rates = Arbiter.rates arbitration contenders in
    List.iter
      (fun x ->
        let r = match List.assoc_opt x.key rates with Some r -> r | None -> 0. in
        if r <> x.rate then begin
          (* Settle the work done at the old rate before switching; a
             transfer whose rate never changes keeps its exact
             [settled + work/rate] finish time, which single-tenant
             exactness depends on. *)
          x.work <- x.work -. ((!now -. x.settled) *. x.rate);
          if x.work < 0. then x.work <- 0.;
          x.settled <- !now;
          x.rate <- r;
          x.eta <-
            (if r > 0. then (if x.work <= 0. then !now else !now +. (x.work /. r))
             else infinity)
        end)
      jobs
  in
  let complete_due () =
    Array.fold_left
      (fun changed ts ->
        match ts.current with
        | Some x when (not x.finished) && x.rate > 0. && x.eta <= !now ->
          x.finished <- true;
          x.finished_at <- x.eta;
          x.work <- 0.;
          ts.current <- None;
          ts.wt_busy <- ts.wt_busy +. x.load;
          ts.ddr <- ts.ddr +. x.bytes;
          (match x.kind with
          | Prefetch_load ->
            ts.weight_ready.(x.target) <- x.finished_at;
            ts.pending_w.(x.target) <- ts.pending_w.(x.target) - 1
          | Demand_load ->
            ts.weight_ready.(x.target) <-
              max ts.weight_ready.(x.target) x.finished_at;
            ts.pending_w.(x.target) <- ts.pending_w.(x.target) - 1
          | Weight_stream_x -> ());
          true
        | _ -> changed)
      false tenants
  in
  let all_finished () =
    Array.for_all (fun ts -> ts.stage = Finished) tenants
  in
  (* Exhaust every zero-time transition at the current instant. *)
  let settle_instant () =
    let continue = ref true in
    while !continue do
      let c = ref false in
      Array.iter (fun ts -> if progress ts then c := true) tenants;
      if start_jobs () then c := true;
      assign_rates ();
      if complete_due () then c := true;
      continue := !c
    done
  in
  let next_event () =
    let best = ref infinity in
    let consider t = if t > !now && t < !best then best := t in
    Array.iter
      (fun ts ->
        (match ts.stage with
        | Entering -> consider ts.clock
        | Awaiting _ -> ()
        | Executing e -> (
          match e.exec_stream with
          | Some x when not x.finished -> ()
          | _ ->
            let wt_component =
              match e.exec_stream with
              | None -> 0.
              | Some x -> x.finished_at -. e.exec_start
            in
            let p = ts.profiles.(e.exec_id) in
            let _, duration =
              NM.duration_and_binding ~latc:p.Latency.latc ~if_time:e.exec_if
                ~wt_component ~of_time:e.exec_of
            in
            consider (e.exec_start +. duration))
        | Finished -> ());
        match ts.current with
        | Some x when (not x.finished) && x.rate > 0. -> consider x.eta
        | _ -> ())
      tenants;
    !best
  in
  let utilization () =
    List.fold_left (fun acc x -> acc +. x.rate) 0. (on_chip_jobs ())
  in
  let guard = ref 0 in
  settle_instant ();
  while not (all_finished ()) do
    incr guard;
    if !guard > 100_000_000 then failwith "Runtime.Engine: event loop stuck";
    let t = next_event () in
    if t = infinity then
      failwith "Runtime.Engine: no runnable event but tenants unfinished";
    let util = utilization () in
    if t > !now then
      segments := { seg_start = !now; seg_end = t; utilization = util } :: !segments;
    now := t;
    settle_instant ()
  done;
  let runs =
    Array.map
      (fun ts ->
        { label = ts.input.label;
          timings = ts.timings;
          finish = ts.clock;
          latency = ts.clock -. ts.input.arrival;
          prefetch_wait = ts.prefetch_wait;
          wt_channel_busy = ts.wt_busy;
          ddr_bytes = ts.ddr })
      tenants
  in
  let makespan =
    Array.fold_left (fun acc r -> max acc r.finish) 0. runs
  in
  (* Merge adjacent segments with equal utilization. *)
  let timeline =
    List.fold_left
      (fun acc seg ->
        match acc with
        | prev :: rest
          when prev.utilization = seg.utilization
               && prev.seg_end = seg.seg_start ->
          { prev with seg_end = seg.seg_end } :: rest
        | _ -> seg :: acc)
      []
      (List.rev !segments)
    |> List.rev
  in
  { tenants = runs; makespan; timeline }
