type t = Greedy | Edf | Optimized

let to_string = function
  | Greedy -> "greedy"
  | Edf -> "edf"
  | Optimized -> "optimized"

let of_string = function
  | "greedy" -> Some Greedy
  | "edf" -> Some Edf
  | "optimized" -> Some Optimized
  | _ -> None

let all = [ Greedy; Edf; Optimized ]

type pending = {
  key : int;
  deadline : float;
  priority : int;
  rank : float;
}

(* Lexicographic urgency fold shared by the single-winner policies. *)
let most_urgent better ready =
  List.fold_left
    (fun best p -> if better p best then p else best)
    (List.hd ready) (List.tl ready)

let eligible t ready =
  match ready with
  | [] -> []
  | _ -> (
    match t with
    | Greedy -> List.map (fun p -> p.key) ready
    | Edf ->
      let urgent =
        most_urgent
          (fun p best ->
            p.deadline < best.deadline
            || (p.deadline = best.deadline
               && (p.priority < best.priority
                  || (p.priority = best.priority && p.key < best.key))))
          ready
      in
      [ urgent.key ]
    | Optimized ->
      (* A searched static order: ranks come from the schedule
         optimizer's chosen transfer order; deadline/priority/key break
         ties among equally-ranked transfers, so with all ranks 0 (no
         rank table) Optimized degenerates to exactly Edf. *)
      let urgent =
        most_urgent
          (fun p best ->
            p.rank < best.rank
            || (p.rank = best.rank
               && (p.deadline < best.deadline
                  || (p.deadline = best.deadline
                     && (p.priority < best.priority
                        || (p.priority = best.priority && p.key < best.key))))))
          ready
      in
      [ urgent.key ])
