type t = Greedy | Edf

let to_string = function Greedy -> "greedy" | Edf -> "edf"

let of_string = function
  | "greedy" -> Some Greedy
  | "edf" -> Some Edf
  | _ -> None

let all = [ Greedy; Edf ]

type pending = {
  key : int;
  deadline : float;
  priority : int;
}

let eligible t ready =
  match ready with
  | [] -> []
  | _ -> (
    match t with
    | Greedy -> List.map (fun p -> p.key) ready
    | Edf ->
      let urgent =
        List.fold_left
          (fun best p ->
            if
              p.deadline < best.deadline
              || (p.deadline = best.deadline
                 && (p.priority < best.priority
                    || (p.priority = best.priority && p.key < best.key)))
            then p
            else best)
          (List.hd ready) (List.tl ready)
      in
      [ urgent.key ])
