type t = Fair_share | Priority

let to_string = function Fair_share -> "fair" | Priority -> "priority"

let of_string = function
  | "fair" | "fair-share" | "fair_share" -> Some Fair_share
  | "priority" -> Some Priority
  | _ -> None

let all = [ Fair_share; Priority ]

let rates t jobs =
  match jobs with
  | [] -> []
  | _ -> (
    match t with
    | Fair_share ->
      let share = 1. /. float_of_int (List.length jobs) in
      List.map (fun (key, _) -> (key, share)) jobs
    | Priority ->
      let best_key, _ =
        List.fold_left
          (fun (bk, bp) (k, p) ->
            if p < bp || (p = bp && k < bk) then (k, p) else (bk, bp))
          (List.hd jobs) (List.tl jobs)
      in
      List.map (fun (key, _) -> (key, if key = best_key then 1. else 0.)) jobs)

let rates_into t jobs table =
  match jobs with
  | [] -> ()
  | _ -> (
    match t with
    | Fair_share ->
      let share = 1. /. float_of_int (List.length jobs) in
      List.iter (fun (key, _) -> table.(key) <- share) jobs
    | Priority ->
      let best_key, _ =
        List.fold_left
          (fun (bk, bp) (k, p) ->
            if p < bp || (p = bp && k < bk) then (k, p) else (bk, bp))
          (List.hd jobs) (List.tl jobs)
      in
      List.iter
        (fun (key, _) -> table.(key) <- (if key = best_key then 1. else 0.))
        jobs)
