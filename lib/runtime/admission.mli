(** Tenant admission control.

    Before any co-simulation, each tenant asks to join the board with
    its unconstrained resource appetite: the tensor SRAM its solo plan
    would pin and the average DDR bandwidth its isolated run consumes.
    The controller walks tenants in priority order and admits each one
    only while the whole admitted set stays feasible:

    - the SRAM partition over the admitted set must grant every member
      at least [min(demand, min_grant_bytes)] — partitions never
      over-commit the budget (see {!Partition.split}) and never shrink
      an admitted tenant below its minimum useful share;
    - the summed bandwidth demand must stay within [overcommit] times
      the board bandwidth (a lone tenant is exempt — with nobody to
      contend with it merely runs at its isolated speed).

    A tenant that can never run (its minimum SRAM share exceeds the
    whole board budget) is rejected outright; one that merely does not
    fit *now* is queued, to be resubmitted when the board drains. *)

type demand = {
  sram_bytes : int;   (** Unconstrained tensor-SRAM appetite. *)
  bandwidth : float;  (** Isolated average DDR bytes/second. *)
}

type decision =
  | Admitted of { grant_bytes : int }  (** Final SRAM partition share. *)
  | Queued of { reason : string }
  | Rejected of { reason : string }

val default_min_grant : int
(** One DNNK allocation block — below this a partition cannot hold any
    pinned tensor at all. *)

val decide :
  ?min_grant_bytes:int ->
  partition:Partition.policy ->
  budget_bytes:int ->
  board_bandwidth:float ->
  overcommit:float ->
  demand array ->
  decision array
(** Decisions index-aligned with the demands (which must be in priority
    order, highest first).  Admitted grants always sum to at most
    [budget_bytes].  Raises [Invalid_argument] when [overcommit <= 0] or
    [min_grant_bytes < 0]. *)
