(** SRAM partitioning across tenants.

    The board's tensor-buffer SRAM budget (what a single LCMM plan would
    have had all to itself) is carved into per-tenant partitions; each
    admitted tenant's plan is then re-compiled by DNNK under its
    partition as a hard capacity override, so no allocation ever leans
    on another tenant's share. *)

type policy =
  | Equal            (** [budget / n] each, demand-blind. *)
  | Demand_weighted
      (** Proportional to each tenant's unconstrained SRAM demand (the
          tensor bytes its solo plan chose).  When the demands all fit,
          each tenant gets its demand plus an equal share of the slack;
          when oversubscribed, floored proportional shares. *)

val to_string : policy -> string

val of_string : string -> policy option
(** Accepts ["equal"] and ["demand"] (also ["demand-weighted"] /
    ["demand_weighted"]). *)

val all : policy list

val split : policy -> budget_bytes:int -> demands:int array -> int array
(** Per-tenant grants, index-aligned with [demands].  The grants always
    sum to at most [budget_bytes] (the admission controller's
    no-overcommit invariant leans on this).  Raises [Invalid_argument]
    on a negative budget. *)
