(** DDR bandwidth arbitration between tenants.

    The board exposes [Fpga.Device.ddr_channels] independently
    schedulable DRAM channels, each an equal stripe of the aggregate
    bandwidth; the engine arbitrates each channel separately.  When
    several tenants have a transfer on the same channel at once, the
    arbiter decides what fraction of that channel's stripe each gets.
    Rates are fractions of the full isolated bandwidth (the one every
    tenant's load times were computed against), so a transfer running at
    rate [r] takes [1/r] times its isolated duration.

    The pre-channel aggregate model is exactly the 1-channel special
    case: with one channel the stripe is the whole bandwidth and the
    engine makes a single arbitration call over all pending transfers,
    so every 1-channel run is float-for-float the old fluid-bus run. *)

type t =
  | Fair_share  (** Every active transfer gets an equal bandwidth share. *)
  | Priority
      (** Strict priority: the active transfer of the highest-priority
          tenant (lowest priority number, ties to the lowest job key)
          gets the full bandwidth; the rest stall until it finishes. *)

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["fair"] (also ["fair-share"]/["fair_share"]) and
    ["priority"]. *)

val all : t list

val rates : t -> (int * int) list -> (int * float) list
(** [rates t jobs] assigns a bandwidth fraction to each [(job_key,
    priority)] contender.  The fractions sum to 1 when [jobs] is
    non-empty (the bus is work-conserving); the empty list maps to the
    empty list. *)

val rates_into : t -> (int * int) list -> float array -> unit
(** [rates_into t jobs table] writes the same fractions as {!rates}
    straight into [table] at each contender's key — the engine's
    O(1)-lookup path.  Only contender entries are written; the caller
    owns zeroing them between rounds. *)
