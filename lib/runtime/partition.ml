type policy = Equal | Demand_weighted

let to_string = function Equal -> "equal" | Demand_weighted -> "demand"

let of_string = function
  | "equal" -> Some Equal
  | "demand" | "demand-weighted" | "demand_weighted" -> Some Demand_weighted
  | _ -> None

let all = [ Equal; Demand_weighted ]

let split policy ~budget_bytes ~demands =
  if budget_bytes < 0 then invalid_arg "Partition.split: negative budget";
  let n = Array.length demands in
  if n = 0 then [||]
  else
    match policy with
    | Equal -> Array.make n (budget_bytes / n)
    | Demand_weighted ->
      let total_demand = Array.fold_left ( + ) 0 demands in
      if total_demand = 0 then Array.make n (budget_bytes / n)
      else if total_demand <= budget_bytes then
        (* Everything fits: grant each tenant its demand and spread the
           slack equally, so a tenant constrained by a conservative
           demand estimate can still grow into spare SRAM. *)
        let slack = (budget_bytes - total_demand) / n in
        Array.map (fun d -> d + slack) demands
      else
        (* Oversubscribed: proportional shares, floored so the grants
           can never exceed the budget. *)
        Array.map
          (fun d ->
            int_of_float
              (floor
                 (float_of_int budget_bytes *. float_of_int d
                 /. float_of_int total_demand)))
          demands
