(** The board runtime driver: admit, partition, compile, co-simulate.

    Ties the runtime subsystem together end to end.  Each tenant spec
    names a model replica with a priority and an arrival time; [run]
    compiles every distinct model once (DSE + unconstrained LCMM plan),
    asks {!Admission} which tenants fit the board, splits the tensor
    SRAM budget across the admitted set with {!Partition}, re-runs the
    LCMM framework per tenant against its share
    ({!Lcmm.Framework.plan_partitioned}), and co-simulates the admitted
    plans under shared DDR bandwidth with {!Engine}.

    With a single tenant the partition grants the whole budget, the
    unconstrained plan is reused verbatim, and the reported latency
    equals {!Sim.Engine.simulate}'s to the last bit. *)

type spec = {
  name : string;      (** Unique instance name, e.g. [alexnet#0]. *)
  model : string;     (** Zoo model name — the compilation cache key. *)
  graph : Dnn_graph.Graph.t;
  priority : int;     (** Lower = more important. *)
  arrival : float;    (** Seconds after time 0 the tenant arrives. *)
}

type options = {
  dtype : Tensor.Dtype.t;
  device : Fpga.Device.t;
  arbitration : Arbiter.t;
  scheduler : Scheduler.t;
  channels : int;
      (** DDR channels to schedule over (clamped to >= 1).  1 — the
          default — is the aggregate fluid-bus model, bit for bit; past
          1 each tenant's streams are bound to channels by
          {!Lcmm.Channels.assign} (or the plan's own assignment when the
          planner ran at the same width) and each channel carries an
          equal bandwidth stripe. *)
  schedule_rounds : int;
      (** Plan/schedule co-iteration bound for the [optimized]
          scheduler: each round searches a schedule, feeds per-tenant
          slowdowns back as planner stall scales, and replans; stops
          early when a round fails to improve or the scales reach a
          fixpoint.  Ignored by [greedy]/[edf]. *)
  partition : Partition.policy;
  overcommit : float;       (** Admission bandwidth over-subscription. *)
  min_grant_bytes : int;    (** Smallest useful SRAM share. *)
  fw_options : Lcmm.Framework.options;
  faults : Fault.Spec.t option;
      (** Seeded fault injection.  [None] — or a spec with no active
          fault source, which is normalised away — runs the bit-exact
          fault-free engine.  On SRAM bank loss the affected tenant is
          degraded in place: pinned buffers evicted by reverse
          benefit-density, the plan re-solved at the surviving capacity
          ({!Lcmm.Framework.degrade}) and execution resumed from the
          current node. *)
}

val default_options : options
(** I16 on the VU9P, fair-share arbitration, EDF scheduling, one
    channel, 3 schedule rounds, equal partitioning, 4x bandwidth
    overcommit, one-block minimum grant, no faults. *)

val run : ?pool:Lcmm.Pool.t -> options -> spec list -> Report.t
(** Admit, partition, compile and co-simulate the tenants.  Specs with
    the same [model] share one design-space exploration and base plan;
    deterministic for a fixed spec list.  [pool] parallelizes the
    per-model compiles and the per-grant partitioned replans across
    domains; the report is byte-identical to the sequential run (both
    fan-outs fill tables keyed deterministically by model / (model,
    grant)). *)
