(** The board-runtime report: per-tenant outcomes, the makespan and the
    bus-utilization timeline, as both JSON (the [lcmm runtime --json]
    document and the service's [run] payload) and a human-readable
    rendering. *)

type status =
  | Admitted
  | Queued of string    (** Reason; resubmit when the board drains. *)
  | Rejected of string  (** Reason; can never run on this board. *)
  | Aborted of string   (** Killed mid-run by an injected fault. *)

type tenant_report = {
  name : string;            (** Unique instance name, e.g. [alexnet#0]. *)
  model : string;
  priority : int;
  status : status;
  arrival_ms : float;
  grant_bytes : int;        (** SRAM partition share. *)
  demand_bytes : int;       (** Unconstrained solo-plan SRAM appetite. *)
  sram_used_bytes : int;    (** What the partitioned plan actually pinned —
                                the degraded plan's pinning after a bank
                                loss. *)
  isolated_ms : float;      (** Partitioned plan, exclusive bandwidth. *)
  latency_ms : float;       (** Same plan under contention. *)
  finish_ms : float;        (** Absolute completion time. *)
  slowdown : float;         (** [latency / isolated]. *)
  prefetch_wait_ms : float;
  ddr_mb : float;
  faults : Engine.fault_stats; (** Per-tenant fault counters; {!no_faults}
                                   for fault-free runs. *)
}

val no_faults : Engine.fault_stats
(** All-zero counters for tenants that never ran under faults. *)

type schedule_info = {
  sched_rounds : int;            (** Plan/schedule co-iteration rounds run. *)
  sched_history_ms : float list; (** Per-round optimized makespan, in order. *)
  sched_converged : bool;        (** A round stopped improving (or the
                                     stall-scale fixpoint was reached)
                                     before the round bound. *)
  sched_chosen : string;         (** Winning candidate label. *)
  sched_candidates : (string * float) list;
      (** Every candidate of the winning round with its makespan (ms). *)
}
(** Telemetry of the [optimized] scheduler's search — [None] for
    [greedy]/[edf] runs. *)

type t = {
  device : string;
  dtype : string;
  arbitration : Arbiter.t;
  scheduler : Scheduler.t;
  partition : Partition.policy;
  budget_bytes : int;
  board_bandwidth : float;   (** Bytes/second. *)
  overcommit : float;
  makespan_ms : float;
  bus_busy_fraction : float; (** Time-weighted mean bus utilization. *)
  tenants : tenant_report list;
  timeline : Engine.segment list;
  channels : int;            (** DDR channels the run was scheduled over. *)
  channel_timelines : Engine.segment list array;
      (** Per-channel utilization timelines (aggregate-bandwidth units).
          JSON emits the per-channel fields — and [channels] itself —
          only past one channel, so 1-channel reports stay byte-identical
          to the aggregate-bus format. *)
  schedule : schedule_info option;
  faults : Fault.Spec.t option;
      (** The (non-empty) fault spec the run executed under.  When
          [None], both renderings are byte-identical to the fault-free
          engine's: every fault field is omitted. *)
}

val status_string : status -> string

val channel_busy_fraction :
  channels:int -> makespan_ms:float -> Engine.segment list -> float
(** Time-weighted busy fraction of one channel's timeline.  Segment
    utilizations are in aggregate-bandwidth units, so a channel's full
    stripe is [1/channels]; the helper rescales before clamping at
    saturation.  Used by the JSON rendering and [lcmm bench runtime]. *)

val to_json : t -> Dnn_serial.Json.t

val pp : Format.formatter -> t -> unit
