(** Bandwidth-contended multi-tenant co-simulation.

    Every admitted tenant executes its own plan node by node exactly as
    {!Sim.Engine.simulate} would — same release points, same Eq. 1
    component arithmetic, via {!Sim.Node_model} — but all DDR weight
    transfers (prefetches, demand loads, streamed weight tiles) go
    through the board's DDR channels: each transfer is statically bound
    to one of [channels] channels (the device's DDR bank count, each an
    equal 1/C stripe of the aggregate bandwidth), the {!Scheduler} picks
    which released transfers may use each channel, the {!Arbiter} splits
    that channel's stripe among them, and a transfer running at fraction
    [r] of the aggregate bandwidth takes [1/r] times its isolated
    duration.  Prefetches that were fully hidden in isolation can
    therefore become exposed stalls under contention — the paper's
    data-transfer bottleneck reappearing between tenants.

    With [channels = 1] (the default) the grouping collapses to one
    scheduler/arbiter call over all pending transfers: the pre-channel
    aggregate fluid-bus model, float for float.  With a single tenant
    there is additionally never more than one transfer on the bus, every
    rate is 1, and the co-simulation reproduces the isolated engine bit
    for bit (pinned by test/test_runtime.ml across the model zoo).

    An optional {!Fault.Injector.t} adds seeded board faults as discrete
    events: DDR droop windows scale every granted rate, transfers can
    stall at the channel head or fail and retry with capped exponential
    backoff, SRAM bank losses push the affected tenant into degraded
    mode (evict + replan via its [replan] callback, resume from the
    current node), and abort events finish a tenant early.  With no
    injector every fault path is skipped and the engine is exactly the
    fault-free one. *)

type degraded_plan = {
  deg_on_chip : Lcmm.Metric.Item_set.t;
  deg_prefetch : Lcmm.Prefetch.t option;
  deg_pinned_bytes : int;     (** What the degraded plan pins. *)
  deg_evicted_bytes : int;    (** Emergency-evicted virtual buffer bytes. *)
  deg_surviving_bytes : int;  (** Capacity the replan was solved against. *)
}
(** What a tenant resumes with after an SRAM bank loss: the degraded
    allocation and PDG from {!Lcmm.Framework.degrade}, plus the
    accounting the report surfaces. *)

type tenant_input = {
  label : string;
  metric : Lcmm.Metric.t;
  on_chip : Lcmm.Metric.Item_set.t;
  prefetch : Lcmm.Prefetch.t option;
  arrival : float;         (** Seconds after time 0 the tenant starts. *)
  priority : int;          (** Lower = more important (arbitration, EDF ties). *)
  slack : int -> float;
      (** Per target node, how long its prefetch may take before the
          target stalls — the isolated-schedule distance from the PDG
          source's start to the target's start.  Defines EDF deadlines. *)
  replan : (lost_bytes:int -> degraded_plan option) option;
      (** Degraded-mode callback, invoked on SRAM bank loss with the
          tenant's cumulative lost bytes; [None] (or a [None] return)
          aborts the tenant instead of degrading it. *)
}

type fault_stats = {
  retries : int;              (** Failed transfer attempts that were retried. *)
  stalls : int;               (** Injected transfer-start stalls. *)
  degraded : int;             (** Bank-loss events absorbed by replanning. *)
  evicted_bytes : int;        (** Emergency-evicted virtual buffer bytes. *)
  pinned_after : int option;  (** Pinned bytes after the last degrade. *)
  surviving_bytes : int option;
      (** SRAM capacity surviving the last bank loss. *)
  aborted : string option;    (** Abort reason when the tenant died early. *)
}

type tenant_run = {
  label : string;
  timings : Sim.Engine.node_timing array;
  finish : float;          (** Absolute finish time of the last node. *)
  latency : float;         (** [finish - arrival]. *)
  prefetch_wait : float;
  wt_channel_busy : float;
  ddr_bytes : float;       (** Engine-accounted DDR traffic (weight
                               transfers plus feature streams), including
                               the wasted bytes of failed attempts. *)
  faults : fault_stats;    (** All-zero when no injector was given. *)
}

type segment = { seg_start : float; seg_end : float; utilization : float }
(** One piece of the bus-utilization timeline: the summed bandwidth
    fraction in use over [seg_start, seg_end). *)

type kind = Prefetch_load | Demand_load | Weight_stream_x
(** DDR transfer kinds: PDG-scheduled weight prefetches, weight loads
    demanded at node entry, and streamed tiles of unpinned weight
    remainders. *)

type xfer_log = {
  log_owner : int;        (** Tenant index. *)
  log_target : int;       (** Node the transfer feeds. *)
  log_kind : kind;
  log_channel : int;      (** DDR channel the transfer ran on. *)
  log_bytes : float;
  log_load : float;       (** Seconds at full aggregate bandwidth. *)
  log_deadline : float;
  log_released : float;   (** Queue-entry instant (its PDG release). *)
  log_started : float;    (** First instant granted bandwidth; -1 = never. *)
  log_finished : float;   (** Finish instant; -1 = cancelled/aborted. *)
}
(** Final state of one transfer — the run's communication schedule,
    consumed by the schedule optimizer and the schedule-conserve
    oracle. *)

type result = {
  tenants : tenant_run array;
  makespan : float;        (** Max finish time over all tenants. *)
  timeline : segment list; (** Chronological, adjacent equal segments merged. *)
  channels : int;          (** Channel count the run was scheduled over. *)
  channel_timelines : segment list array;
      (** Per-channel utilization timelines, in the same aggregate-
          bandwidth units as [timeline] (they sum to it; a channel's
          full stripe is utilization [1/channels]).  At one channel,
          [channel_timelines.(0) = timeline] exactly. *)
  transfers : xfer_log list;  (** Every transfer created, in key order. *)
}

val run :
  arbitration:Arbiter.t -> scheduler:Scheduler.t -> ?channels:int ->
  ?assign:(owner:int -> target:int -> kind -> int) ->
  ?rank:(owner:int -> target:int -> kind -> float) ->
  ?faults:Fault.Injector.t -> tenant_input array -> result
(** Co-simulate the tenants to completion.  Deterministic: tenants are
    processed in index order, transfers carry creation-order keys, and
    every fault decision is a pure hash of the injector seed and the
    transfer key.  Omitting [faults] gives exactly the fault-free
    engine.

    [channels] (default 1) is the number of equal DDR bandwidth stripes;
    [assign] maps each transfer onto one (out-of-range or missing
    assignments land on channel 0).  [rank] supplies the [Optimized]
    scheduler's searched-order ranks; without it [Optimized] behaves as
    [Edf].  Omitting all three gives exactly the pre-channel aggregate
    engine. *)
