module NM = Sim.Node_model
module Latency = Accel.Latency

(* DRAM communication-schedule search (SoMa-style).

   The space it explores is transfer *order*: which pending transfer
   each DDR channel drains first.  A candidate order is encoded as a
   static rank table — rank of (owner, target, kind) — and executed
   exactly by the engine's [Optimized] scheduler, which always grants a
   channel's lowest-ranked pending transfer.  Candidates come from two
   sources:

   - the exact [Greedy] and [Edf] baselines (so the chosen schedule can
     never lose to either — the portfolio guarantee the ci gate and the
     schedule-conserve oracle check), and
   - a beam search over the tenants' static transfer profiles with
     per-channel busy timelines, minimizing exposed stall (finish past
     deadline), plus deterministic heuristic orders (priority-first,
     least-laxity) that capture deliberate early/late placement.

   Every candidate is then *evaluated exactly* by [Engine.run] — the
   beam's timeline model is only used to propose orders, never to score
   the winner — and the best (makespan, then high-priority slowdown,
   then candidate index) wins.  Candidate evaluation fans out on the
   domain pool. *)

type transfer = {
  t_owner : int;
  t_target : int;
  t_kind : Engine.kind;
  t_release : float;   (* isolated-schedule release estimate *)
  t_dur : float;       (* seconds at one channel's full stripe *)
  t_deadline : float;
}

type candidate = {
  cand_label : string;
  cand_scheduler : Scheduler.t;
  cand_rank : (owner:int -> target:int -> Engine.kind -> float) option;
}

type outcome = {
  result : Engine.result;
  chosen : string;
  hp_slowdown : float;
  candidates : (string * float) list;
}

let kind_int = function
  | Engine.Prefetch_load -> 0
  | Engine.Demand_load -> 1
  | Engine.Weight_stream_x -> 2

(* Static transfer profile of one tenant, mirroring the engine's
   enqueue points with isolated-schedule times standing in for the
   contended ones (the engine itself remains the ground truth). *)
let profile_tenant ~channels index (input : Engine.tenant_input)
    (iso : Sim.Engine.run) =
  let metric = input.Engine.metric in
  let on_chip = input.Engine.on_chip in
  let profiles = metric.Lcmm.Metric.profiles in
  let n = Array.length profiles in
  let released =
    NM.released_edges ?prefetch:input.Engine.prefetch metric ~on_chip n
  in
  let has_edge = NM.has_edge released n in
  let stripe = float_of_int (max 1 channels) in
  let acc = ref [] in
  for id = 0 to n - 1 do
    let entry = input.Engine.arrival +. iso.Sim.Engine.timings.(id).Sim.Engine.start in
    List.iter
      (fun e ->
        let target = e.Lcmm.Prefetch.target in
        let frac = NM.pinned_fraction metric ~on_chip target in
        acc :=
          { t_owner = index; t_target = target; t_kind = Engine.Prefetch_load;
            t_release = entry;
            t_dur = e.Lcmm.Prefetch.load_seconds *. frac *. stripe;
            t_deadline = entry +. input.Engine.slack target }
          :: !acc)
      released.(id);
    (match NM.demand_load metric ~on_chip ~has_edge profiles.(id) with
    | None -> ()
    | Some load ->
      acc :=
        { t_owner = index; t_target = id; t_kind = Engine.Demand_load;
          t_release = entry; t_dur = load *. stripe; t_deadline = entry }
        :: !acc);
    let frac = NM.pinned_fraction metric ~on_chip id in
    let streamed = profiles.(id).Latency.wt_term *. (1. -. frac) in
    if streamed > 0. then
      acc :=
        { t_owner = index; t_target = id; t_kind = Engine.Weight_stream_x;
          t_release = entry; t_dur = streamed *. stripe; t_deadline = entry }
        :: !acc
  done;
  Array.of_list (List.rev !acc)

(* Beam search over per-channel busy timelines: states hold each
   tenant's next-transfer cursor and each channel's busy-until time;
   expanding a state schedules one tenant's head transfer onto its
   channel.  Scored by accumulated exposed stall, then summed finish
   times.  Deterministic: expansion in state-then-tenant order, pruning
   by stable sort. *)
type beam_state = {
  cursors : int array;
  ch_free : float array;
  ten_free : float array;
  stall : float;
  finish_sum : float;
  order : (int * int * int) list;  (* reversed (owner, target, kind) *)
}

let beam_orders ~beam_width ~channels ~channel_of
    (profiles : transfer array array) =
  let tcount = Array.length profiles in
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 profiles in
  if total = 0 then []
  else begin
    let init =
      { cursors = Array.make tcount 0;
        ch_free = Array.make (max 1 channels) 0.;
        ten_free = Array.make tcount 0.;
        stall = 0.;
        finish_sum = 0.;
        order = [] }
    in
    let states = ref [ init ] in
    for _step = 1 to total do
      let expanded = ref [] in
      List.iter
        (fun st ->
          for t = tcount - 1 downto 0 do
            let c = st.cursors.(t) in
            if c < Array.length profiles.(t) then begin
              let x = profiles.(t).(c) in
              let ch = channel_of x in
              let start =
                Float.max x.t_release
                  (Float.max st.ch_free.(ch) st.ten_free.(t))
              in
              let fin = start +. x.t_dur in
              let cursors = Array.copy st.cursors in
              cursors.(t) <- c + 1;
              let ch_free = Array.copy st.ch_free in
              ch_free.(ch) <- fin;
              let ten_free = Array.copy st.ten_free in
              ten_free.(t) <- fin;
              expanded :=
                { cursors;
                  ch_free;
                  ten_free;
                  stall = st.stall +. Float.max 0. (fin -. x.t_deadline);
                  finish_sum = st.finish_sum +. fin;
                  order = (x.t_owner, x.t_target, kind_int x.t_kind) :: st.order }
                :: !expanded
            end
          done)
        !states;
      let ranked =
        List.stable_sort
          (fun a b ->
            match compare a.stall b.stall with
            | 0 -> compare a.finish_sum b.finish_sum
            | c -> c)
          (List.rev !expanded)
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | s :: rest -> s :: take (k - 1) rest
      in
      states := take beam_width ranked
    done;
    List.map (fun st -> List.rev st.order) !states
  end

(* Deterministic heuristic orders over the flattened transfer list. *)
let sorted_order cmp (profiles : transfer array array) =
  Array.to_list profiles
  |> List.concat_map Array.to_list
  |> List.stable_sort cmp
  |> List.map (fun x -> (x.t_owner, x.t_target, kind_int x.t_kind))

let rank_of_order order =
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun i key -> if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key (float_of_int i))
    order;
  fun ~owner ~target kind ->
    match Hashtbl.find_opt tbl (owner, target, kind_int kind) with
    | Some r -> r
    | None -> infinity

let search ?pool ?(beam_width = 4) ?(hp_first = false) ~arbitration ~channels
    ?assign ?(make_faults = fun () -> None) ~isos
    (inputs : Engine.tenant_input array) =
  let channels = max 1 channels in
  let profiles = Array.mapi (fun i input -> profile_tenant ~channels i input isos.(i)) inputs in
  let channel_of (x : transfer) =
    match assign with
    | None -> 0
    | Some f ->
      let c = f ~owner:x.t_owner ~target:x.t_target x.t_kind in
      if c < 0 || c >= channels then 0 else c
  in
  (* Candidate orders: beam results plus deterministic heuristics.
     Deduped by order so identical proposals evaluate once. *)
  let orders =
    beam_orders ~beam_width ~channels ~channel_of profiles
    @ [ (* High-priority tenants drain first; EDF inside a class.  The
           candidate that targets contended-mix slowdown directly. *)
        sorted_order
          (fun a b ->
            match
              compare inputs.(a.t_owner).Engine.priority
                inputs.(b.t_owner).Engine.priority
            with
            | 0 -> compare (a.t_deadline, a.t_release) (b.t_deadline, b.t_release)
            | c -> c)
          profiles;
        (* Least laxity first: transfers with the least room to move
           drain first — late placement for slack-rich prefetches. *)
        sorted_order
          (fun a b ->
            compare (a.t_deadline -. a.t_dur, a.t_release)
              (b.t_deadline -. b.t_dur, b.t_release))
          profiles;
        (* Shortest transfer first: clears channel heads quickly. *)
        sorted_order
          (fun a b -> compare (a.t_dur, a.t_release) (b.t_dur, b.t_release))
          profiles ]
  in
  let seen = Hashtbl.create 8 in
  let searched =
    List.filteri
      (fun _ order ->
        if Hashtbl.mem seen order then false
        else begin
          Hashtbl.add seen order ();
          true
        end)
      orders
  in
  let candidates =
    { cand_label = "greedy"; cand_scheduler = Scheduler.Greedy; cand_rank = None }
    :: { cand_label = "edf"; cand_scheduler = Scheduler.Edf; cand_rank = None }
    :: List.mapi
         (fun i order ->
           { cand_label = Printf.sprintf "order%d" i;
             cand_scheduler = Scheduler.Optimized;
             cand_rank = Some (rank_of_order order) })
         searched
  in
  let evaluate cand =
    Engine.run ~arbitration ~scheduler:cand.cand_scheduler ~channels ?assign
      ?rank:cand.cand_rank ?faults:(make_faults ()) inputs
  in
  let results =
    match pool with
    | None -> List.map evaluate candidates
    | Some pool -> Lcmm.Pool.map_list pool evaluate candidates
  in
  let hp_slowdown_of (r : Engine.result) =
    let hp =
      Array.fold_left
        (fun acc (i : Engine.tenant_input) -> min acc i.Engine.priority)
        max_int inputs
    in
    let worst = ref 1. in
    Array.iteri
      (fun i (tr : Engine.tenant_run) ->
        if inputs.(i).Engine.priority = hp then begin
          let iso_total = isos.(i).Sim.Engine.total in
          if iso_total > 0. then
            worst := Float.max !worst (tr.Engine.latency /. iso_total)
        end)
      r.Engine.tenants;
    !worst
  in
  let scored =
    List.map2
      (fun cand r -> (cand.cand_label, r, r.Engine.makespan, hp_slowdown_of r))
      candidates results
  in
  (* Only candidates at or below the best baseline makespan are
     eligible — the chosen schedule can never lose to greedy or edf no
     matter the objective.  Within the eligible set, [hp_first]
     (priority arbitration: the operator declared the high-priority
     tenants matter most) minimizes their slowdown before makespan;
     otherwise makespan first. *)
  let baseline =
    match scored with
    | (_, _, gm, _) :: (_, _, em, _) :: _ -> Float.min gm em
    | _ -> infinity
  in
  let better (m, h) (bm, bh) =
    if hp_first then h < bh || (h = bh && m < bm)
    else m < bm || (m = bm && h < bh)
  in
  let best =
    List.fold_left
      (fun acc ((_, _, m, h) as c) ->
        if m > baseline then acc
        else
          match acc with
          | None -> Some c
          | Some (_, _, bm, bh) ->
            if better (m, h) (bm, bh) then Some c else acc)
      None scored
  in
  let label, result, _, hp =
    match best with
    | Some b -> b
    | None -> invalid_arg "Optimizer.search: no candidates"
  in
  { result;
    chosen = label;
    hp_slowdown = hp;
    candidates = List.map (fun (l, _, m, _) -> (l, m)) scored }
