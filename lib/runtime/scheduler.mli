(** Cross-tenant transfer scheduling.

    The arbiter splits bandwidth among the transfers the scheduler lets
    onto the bus; the scheduler decides *which* pending transfers those
    are.  [Greedy] is the work-conserving baseline: every tenant's
    head-of-queue transfer contends as soon as it is released.  [Edf]
    (earliest deadline first) instead dedicates the bus to the most
    urgent transfer: each weight prefetch carries a deadline equal to
    its release time plus its slack (the isolated-schedule distance from
    its PDG source to its target — how long the load may take before the
    target node stalls), and demand loads and streamed-weight transfers
    are due immediately.  Draining urgent transfers at full bandwidth
    instead of fair-sharing everything is what turns prefetches that
    contention would expose back into hidden ones. *)

type t = Greedy | Edf

val to_string : t -> string

val of_string : string -> t option

val all : t list

type pending = {
  key : int;        (** Unique transfer key (creation order). *)
  deadline : float; (** Absolute time by which it should finish. *)
  priority : int;   (** Owning tenant's priority (lower = higher). *)
}

val eligible : t -> pending list -> int list
(** Keys of the transfers allowed to contend for bandwidth right now:
    all of them under [Greedy], the single most urgent one under [Edf]
    (earliest deadline, ties by priority then key). *)
