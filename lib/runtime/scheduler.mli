(** Cross-tenant transfer scheduling.

    The arbiter splits bandwidth among the transfers the scheduler lets
    onto a DDR channel; the scheduler decides *which* pending transfers
    those are, independently per channel.  [Greedy] is the
    work-conserving baseline: every tenant's head-of-queue transfer
    contends as soon as it is released.  [Edf] (earliest deadline first)
    instead dedicates each channel to its most urgent transfer: each
    weight prefetch carries a deadline equal to its release time plus
    its slack (the isolated-schedule distance from its PDG source to its
    target — how long the load may take before the target node stalls),
    and demand loads and streamed-weight transfers are due immediately.
    Draining urgent transfers at full bandwidth instead of fair-sharing
    everything is what turns prefetches that contention would expose
    back into hidden ones.

    [Optimized] executes a searched transfer order: the schedule
    optimizer ({!Optimizer}) explores orders over the PDG with
    per-channel busy timelines and encodes the chosen order as per-
    transfer ranks; the engine then always grants the lowest-ranked
    pending transfer of each channel.  With no rank table (all ranks 0)
    it degenerates to exactly [Edf]. *)

type t = Greedy | Edf | Optimized

val to_string : t -> string

val of_string : string -> t option

val all : t list

type pending = {
  key : int;        (** Unique transfer key (creation order). *)
  deadline : float; (** Absolute time by which it should finish. *)
  priority : int;   (** Owning tenant's priority (lower = higher). *)
  rank : float;     (** Searched-order rank (lower = earlier); 0 when
                        no rank table is in force. *)
}

val eligible : t -> pending list -> int list
(** Keys of the transfers allowed to contend for bandwidth right now
    (the engine calls this once per channel, with that channel's pending
    transfers): all of them under [Greedy], the single most urgent one
    under [Edf] (earliest deadline, ties by priority then key), the
    lowest-ranked one under [Optimized] (ties by deadline, priority,
    key). *)
