type demand = {
  sram_bytes : int;
  bandwidth : float;
}

type decision =
  | Admitted of { grant_bytes : int }
  | Queued of { reason : string }
  | Rejected of { reason : string }

let default_min_grant = Lcmm.Dnnk.block_bytes

(* A tenant only *requires* SRAM up to what it would use: a tenant that
   pins nothing (demand 0) is admissible with a zero grant. *)
let required ~min_grant_bytes d = min d.sram_bytes min_grant_bytes

let decide ?(min_grant_bytes = default_min_grant) ~partition ~budget_bytes
    ~board_bandwidth ~overcommit demands =
  if min_grant_bytes < 0 then
    invalid_arg "Admission.decide: negative min_grant_bytes";
  if overcommit <= 0. then invalid_arg "Admission.decide: overcommit must be > 0";
  let n = Array.length demands in
  let decisions = Array.make n (Queued { reason = "not considered" }) in
  (* Tenants are considered in priority order; [admitted] holds indices
     in that order. *)
  let admitted = ref [] in
  let grants_of indices =
    let idx = Array.of_list indices in
    let ds = Array.map (fun i -> demands.(i).sram_bytes) idx in
    (idx, Partition.split partition ~budget_bytes ~demands:ds)
  in
  let feasible indices =
    let idx, grants = grants_of indices in
    let sram_ok = ref true in
    Array.iteri
      (fun k i ->
        if grants.(k) < required ~min_grant_bytes demands.(i) then
          sram_ok := false)
      idx;
    let sram_ok = !sram_ok in
    let bw =
      Array.fold_left (fun acc i -> acc +. demands.(i).bandwidth) 0. idx
    in
    let bw_ok = Array.length idx <= 1 || bw <= overcommit *. board_bandwidth in
    (sram_ok, bw_ok)
  in
  for i = 0 to n - 1 do
    let d = demands.(i) in
    if budget_bytes < required ~min_grant_bytes d then
      decisions.(i) <-
        Rejected
          { reason =
              Printf.sprintf
                "SRAM demand needs at least %d bytes but the board budget is %d"
                (required ~min_grant_bytes d) budget_bytes }
    else begin
      let candidate = !admitted @ [ i ] in
      match feasible candidate with
      | true, true -> admitted := candidate
      | false, _ ->
        decisions.(i) <-
          Queued
            { reason =
                "SRAM partition would fall below a tenant's minimum share" }
      | true, false ->
        decisions.(i) <-
          Queued
            { reason =
                Printf.sprintf
                  "aggregate bandwidth demand would exceed %.1fx the board \
                   bandwidth"
                  overcommit }
    end
  done;
  (* Final grants over the admitted set. *)
  let idx, grants = grants_of !admitted in
  Array.iteri
    (fun k i -> decisions.(i) <- Admitted { grant_bytes = grants.(k) })
    idx;
  decisions
