module Json = Dnn_serial.Json

type status =
  | Admitted
  | Queued of string
  | Rejected of string
  | Aborted of string

type tenant_report = {
  name : string;
  model : string;
  priority : int;
  status : status;
  arrival_ms : float;
  grant_bytes : int;
  demand_bytes : int;
  sram_used_bytes : int;
  isolated_ms : float;
  latency_ms : float;
  finish_ms : float;
  slowdown : float;
  prefetch_wait_ms : float;
  ddr_mb : float;
  faults : Engine.fault_stats;
}

let no_faults =
  { Engine.retries = 0; stalls = 0; degraded = 0; evicted_bytes = 0;
    pinned_after = None; surviving_bytes = None; aborted = None }

type schedule_info = {
  sched_rounds : int;
  sched_history_ms : float list;
  sched_converged : bool;
  sched_chosen : string;
  sched_candidates : (string * float) list;
}

type t = {
  device : string;
  dtype : string;
  arbitration : Arbiter.t;
  scheduler : Scheduler.t;
  partition : Partition.policy;
  budget_bytes : int;
  board_bandwidth : float;
  overcommit : float;
  makespan_ms : float;
  bus_busy_fraction : float;
  tenants : tenant_report list;
  timeline : Engine.segment list;
  channels : int;
  channel_timelines : Engine.segment list array;
  schedule : schedule_info option;
  faults : Fault.Spec.t option;
}

(* Time-weighted busy fraction of one channel.  Utilizations are in
   aggregate-bandwidth units, so a channel's full stripe is [1/channels]
   — scale by [channels] before clamping to saturation. *)
let channel_busy_fraction ~channels ~makespan_ms segments =
  if makespan_ms <= 0. then 0.
  else
    List.fold_left
      (fun acc (s : Engine.segment) ->
        acc
        +. ((s.Engine.seg_end -. s.Engine.seg_start)
           *. Float.min 1. (s.Engine.utilization *. float_of_int channels)))
      0. segments
    *. 1e3 /. makespan_ms

let status_string = function
  | Admitted -> "admitted"
  | Queued _ -> "queued"
  | Rejected _ -> "rejected"
  | Aborted _ -> "aborted"

(* The per-tenant fault block is only emitted when the report ran under
   a fault spec ([faulty]); a fault-free run renders byte-identically to
   the engine that predates fault injection. *)
let tenant_json ~faulty (r : tenant_report) =
  let base =
    [ ("name", Json.String r.name);
      ("model", Json.String r.model);
      ("priority", Json.Int r.priority);
      ("status", Json.String (status_string r.status)) ]
  in
  let reason =
    match r.status with
    | Admitted -> []
    | Queued reason | Rejected reason | Aborted reason ->
      [ ("reason", Json.String reason) ]
  in
  let perf =
    match r.status with
    | Admitted | Aborted _ ->
      [ ("arrival_ms", Json.Float r.arrival_ms);
        ("grant_bytes", Json.Int r.grant_bytes);
        ("demand_bytes", Json.Int r.demand_bytes);
        ("sram_used_bytes", Json.Int r.sram_used_bytes);
        ("isolated_ms", Json.Float r.isolated_ms);
        ("latency_ms", Json.Float r.latency_ms);
        ("finish_ms", Json.Float r.finish_ms);
        ("slowdown", Json.Float r.slowdown);
        ("prefetch_wait_ms", Json.Float r.prefetch_wait_ms);
        ("ddr_mb", Json.Float r.ddr_mb) ]
    | Queued _ | Rejected _ -> [ ("demand_bytes", Json.Int r.demand_bytes) ]
  in
  let fault_block =
    if not faulty then []
    else
      let f = r.faults in
      [ ( "faults",
          Json.Obj
            ([ ("retries", Json.Int f.Engine.retries);
               ("stalls", Json.Int f.Engine.stalls);
               ("degraded", Json.Int f.Engine.degraded);
               ("evicted_bytes", Json.Int f.Engine.evicted_bytes) ]
            @ (match f.Engine.surviving_bytes with
              | None -> []
              | Some b -> [ ("surviving_bytes", Json.Int b) ])
            @ (match f.Engine.pinned_after with
              | None -> []
              | Some b -> [ ("pinned_after_bytes", Json.Int b) ])) ) ]
  in
  Json.Obj (base @ reason @ perf @ fault_block)

let timeline_json segments =
  Json.List
    (List.map
       (fun (s : Engine.segment) ->
         Json.Obj
           [ ("t0_ms", Json.Float (s.Engine.seg_start *. 1e3));
             ("t1_ms", Json.Float (s.Engine.seg_end *. 1e3));
             ("utilization", Json.Float s.Engine.utilization) ])
       segments)

let to_json t =
  let faulty = t.faults <> None in
  Json.Obj
    ([ ("device", Json.String t.device);
       ("dtype", Json.String t.dtype);
       ("arbitration", Json.String (Arbiter.to_string t.arbitration));
       ("scheduler", Json.String (Scheduler.to_string t.scheduler));
       ("partition", Json.String (Partition.to_string t.partition));
       ("budget_bytes", Json.Int t.budget_bytes);
       ("board_bandwidth_gbs", Json.Float (t.board_bandwidth /. 1e9));
       ("overcommit", Json.Float t.overcommit) ]
    @ (match t.faults with
      | None -> []
      | Some spec ->
        [ ("faults", Fault.Spec.to_json spec);
          ("fault_spec", Json.String (Fault.Spec.to_string spec)) ])
    @ [ ("makespan_ms", Json.Float t.makespan_ms);
        ("bus_busy_fraction", Json.Float t.bus_busy_fraction);
        ("tenants", Json.List (List.map (tenant_json ~faulty) t.tenants));
        ("bandwidth_timeline", timeline_json t.timeline) ]
    (* Per-channel fields only exist past one channel; a 1-channel run
       renders byte-identically to the aggregate-bus report. *)
    @ (if t.channels <= 1 then []
       else
         [ ("channels", Json.Int t.channels);
           ( "channel_busy_fractions",
             Json.List
               (Array.to_list
                  (Array.map
                     (fun segs ->
                       Json.Float
                         (channel_busy_fraction ~channels:t.channels
                            ~makespan_ms:t.makespan_ms segs))
                     t.channel_timelines)) );
           ( "channel_timelines",
             Json.List
               (Array.to_list (Array.map timeline_json t.channel_timelines)) )
         ])
    @
    match t.schedule with
    | None -> []
    | Some s ->
      [ ( "schedule",
          Json.Obj
            [ ("rounds", Json.Int s.sched_rounds);
              ( "history_ms",
                Json.List (List.map (fun m -> Json.Float m) s.sched_history_ms)
              );
              ("converged", Json.Bool s.sched_converged);
              ("chosen", Json.String s.sched_chosen);
              ( "candidates",
                Json.List
                  (List.map
                     (fun (label, ms) ->
                       Json.Obj
                         [ ("label", Json.String label);
                           ("makespan_ms", Json.Float ms) ])
                     s.sched_candidates) ) ] ) ])

let pp ppf t =
  Format.fprintf ppf
    "board: %s %s | SRAM budget %.2f MB | bw %.1f GB/s | %s arbitration, %s \
     scheduler, %s partition@."
    t.device t.dtype
    (float_of_int t.budget_bytes /. 1e6)
    (t.board_bandwidth /. 1e9)
    (Arbiter.to_string t.arbitration)
    (Scheduler.to_string t.scheduler)
    (Partition.to_string t.partition);
  if t.channels > 1 then
    Format.fprintf ppf "channels: %d | per-channel busy %s@." t.channels
      (String.concat " / "
         (Array.to_list
            (Array.map
               (fun segs ->
                 Printf.sprintf "%.0f%%"
                   (100.
                   *. channel_busy_fraction ~channels:t.channels
                        ~makespan_ms:t.makespan_ms segs))
               t.channel_timelines)));
  (match t.schedule with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "schedule: %s after %d round%s (%s) | history %s ms@." s.sched_chosen
      s.sched_rounds
      (if s.sched_rounds = 1 then "" else "s")
      (if s.sched_converged then "converged" else "round limit")
      (String.concat " -> "
         (List.map (fun m -> Printf.sprintf "%.3f" m) s.sched_history_ms)));
  (match t.faults with
  | None -> ()
  | Some spec ->
    Format.fprintf ppf "faults: %s@." (Fault.Spec.to_string spec));
  let faulty = t.faults <> None in
  let fault_line (r : tenant_report) =
    if faulty then begin
      let f = r.faults in
      if
        f.Engine.retries > 0 || f.Engine.stalls > 0 || f.Engine.degraded > 0
        || f.Engine.evicted_bytes > 0
      then
        Format.fprintf ppf
          "    faults: %d retries, %d stalls, %d degrades (evicted %.2f \
           MB%s)@."
          f.Engine.retries f.Engine.stalls f.Engine.degraded
          (float_of_int f.Engine.evicted_bytes /. 1e6)
          (match f.Engine.surviving_bytes with
          | None -> ""
          | Some b ->
            Printf.sprintf ", surviving %.2f MB" (float_of_int b /. 1e6))
    end
  in
  List.iter
    (fun r ->
      match r.status with
      | Admitted ->
        Format.fprintf ppf
          "  %-16s %-12s prio %d  grant %6.2f MB  iso %8.3f ms  run %8.3f ms \
           (x%.2f)  wait %7.3f ms  ddr %7.1f MB@."
          r.name r.model r.priority
          (float_of_int r.grant_bytes /. 1e6)
          r.isolated_ms r.latency_ms r.slowdown r.prefetch_wait_ms r.ddr_mb;
        fault_line r
      | Aborted reason ->
        Format.fprintf ppf
          "  %-16s %-12s prio %d  grant %6.2f MB  ABORTED at %8.3f ms: %s@."
          r.name r.model r.priority
          (float_of_int r.grant_bytes /. 1e6)
          r.finish_ms reason;
        fault_line r
      | Queued reason ->
        Format.fprintf ppf "  %-16s %-12s prio %d  QUEUED: %s@." r.name r.model
          r.priority reason
      | Rejected reason ->
        Format.fprintf ppf "  %-16s %-12s prio %d  REJECTED: %s@." r.name
          r.model r.priority reason)
    t.tenants;
  Format.fprintf ppf "makespan %.3f ms | weight bus busy %.0f%%@." t.makespan_ms
    (100. *. t.bus_busy_fraction)
