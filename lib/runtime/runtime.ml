module F = Lcmm.Framework
module Config = Accel.Config

type spec = {
  name : string;
  model : string;
  graph : Dnn_graph.Graph.t;
  priority : int;
  arrival : float;
}

type options = {
  dtype : Tensor.Dtype.t;
  device : Fpga.Device.t;
  arbitration : Arbiter.t;
  scheduler : Scheduler.t;
  channels : int;
  schedule_rounds : int;
  partition : Partition.policy;
  overcommit : float;
  min_grant_bytes : int;
  fw_options : F.options;
  faults : Fault.Spec.t option;
}

let default_options =
  {
    dtype = Tensor.Dtype.I16;
    device = Fpga.Device.vu9p;
    arbitration = Arbiter.Fair_share;
    scheduler = Scheduler.Edf;
    channels = 1;
    schedule_rounds = 3;
    partition = Partition.Equal;
    overcommit = 4.0;
    min_grant_bytes = Admission.default_min_grant;
    fw_options = F.default_options;
    faults = None;
  }

(* One compiled model, shared by every replica of the same zoo name: the
   LCMM design point, the unconstrained plan and its isolated run, and
   the resource appetite the admission controller sees. *)
type compiled = {
  config : Config.t;
  base : F.plan;
  base_iso : Sim.Engine.run;
  demand : Admission.demand;
}

let used_bytes (p : F.plan) =
  p.F.allocation.Lcmm.Dnnk.used_blocks * Lcmm.Dnnk.block_bytes

(* Fused-layer/weight-streaming pass-through: when the tenant's planner
   options ask for fusion, every plan the runtime consumes — initial
   compile, per-grant replan, degraded-mode replan — is the effective
   plan of the fusion pass.  The engine needs no fusion knowledge: the
   effective metric and extended allocation price segment-internal
   transfers at zero and streamed weights at their steady-state DDR
   rate.  With the flag off the plan passes through untouched. *)
let maybe_fuse (p : F.plan) =
  if p.F.options.F.fusion then
    Lcmm_fusion.Fusion.effective_plan (Lcmm_fusion.Fusion.apply p)
  else p

let isolated (p : F.plan) =
  Sim.Engine.simulate ?prefetch:p.F.prefetch p.F.metric
    ~on_chip:p.F.allocation.Lcmm.Dnnk.on_chip

let compile_model options g =
  let dse =
    Accel.Dse.run ~device:options.device ~style:Config.Lcmm options.dtype g
  in
  let config = dse.Accel.Dse.config in
  let base = maybe_fuse (F.plan ~options:options.fw_options config g) in
  let base_iso = isolated base in
  let traffic =
    Lcmm.Traffic.of_allocation base.F.metric
      ~on_chip:base.F.allocation.Lcmm.Dnnk.on_chip
  in
  let bandwidth =
    if base_iso.Sim.Engine.total > 0. then
      float_of_int (Lcmm.Traffic.total_bytes traffic)
      /. base_iso.Sim.Engine.total
    else 0.
  in
  {
    config;
    base;
    base_iso;
    demand =
      { Admission.sram_bytes = max (used_bytes base) base.F.tensor_sram_bytes;
        bandwidth };
  }

(* Isolated-schedule slack for EDF deadlines: how far the PDG source's
   start precedes the target's start when the tenant runs alone. *)
let slack_of (p : F.plan) (iso : Sim.Engine.run) =
  match p.F.prefetch with
  | None -> fun _ -> 0.
  | Some pdg -> (
      fun target ->
        match Lcmm.Prefetch.source_of pdg target with
        | Some s ->
            iso.Sim.Engine.timings.(target).Sim.Engine.start
            -. iso.Sim.Engine.timings.(s).Sim.Engine.start
        | None -> 0.)

let run ?pool options specs =
  (* A spec with no active board-fault source is normalised away so the
     no-fault path — and its bit-exact output — is completely untouched.
     Transport clauses are tier-level and inert for a board run. *)
  let fault_spec =
    match options.faults with
    | Some s when not (Fault.Spec.has_board_faults s) -> None
    | f -> f
  in
  let injector = Option.map Fault.Injector.create fault_spec in
  let pool_map f xs =
    match pool with
    | None -> List.map f xs
    | Some pool -> Lcmm.Pool.map_list pool f xs
  in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let cache : (string, compiled) Hashtbl.t = Hashtbl.create 8 in
  (* Each distinct model compiles once; the distinct compiles are
     independent, so they fan out on the pool.  Results land in the
     cache keyed by model name, making the fill order irrelevant — the
     report is byte-identical to the sequential run. *)
  let unique_specs =
    let seen = Hashtbl.create 8 in
    Array.to_list specs
    |> List.filter (fun s ->
           if Hashtbl.mem seen s.model then false
           else begin
             Hashtbl.add seen s.model ();
             true
           end)
  in
  List.iter
    (fun (model, c) -> Hashtbl.add cache model c)
    (pool_map (fun s -> (s.model, compile_model options s.graph)) unique_specs);
  let compiled = Array.map (fun s -> Hashtbl.find cache s.model) specs in
  let budget_bytes =
    Array.fold_left
      (fun acc c -> min acc (Config.sram_budget_bytes c.config))
      max_int compiled
    |> fun b -> if n = 0 then 0 else b
  in
  (* Three DDR interfaces (if/wt/of) share the board; the admission
     bandwidth envelope is their aggregate. *)
  let board_bandwidth =
    if n = 0 then 0.
    else
      Array.fold_left
        (fun acc c -> Float.min acc (Config.interface_bandwidth c.config))
        Float.max_float compiled
      *. 3.
  in
  (* The admission controller wants demands in priority order (stable on
     submission order within a priority level). *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare specs.(a).priority specs.(b).priority with
      | 0 -> compare a b
      | c -> c)
    order;
  let decisions_sorted =
    Admission.decide ~min_grant_bytes:options.min_grant_bytes
      ~partition:options.partition ~budget_bytes ~board_bandwidth
      ~overcommit:options.overcommit
      (Array.map (fun i -> compiled.(i).demand) order)
  in
  let decisions = Array.make n (Admission.Queued { reason = "" }) in
  Array.iteri (fun rank i -> decisions.(i) <- decisions_sorted.(rank)) order;
  (* Compile each admitted tenant against its partition share.  A grant
     covering the unconstrained plan's whole budget reuses it verbatim —
     with one tenant this is always the case, which is what makes the
     single-tenant run reproduce [lcmm sim] exactly. *)
  let replan : (string * int, F.plan * Sim.Engine.run) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Pre-solve the distinct (model, grant) replans in parallel: they
     are the expensive admitted-tenant compiles, mutually independent,
     and keyed deterministically, so [partitioned] below always hits
     the table regardless of which domain solved which tenant. *)
  let replan_keys =
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    Array.iteri
      (fun i d ->
        match d with
        | Admission.Admitted { grant_bytes } ->
            let c = compiled.(i) in
            if grant_bytes < c.base.F.tensor_sram_bytes then begin
              let key = (specs.(i).model, grant_bytes) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                acc := (i, grant_bytes) :: !acc
              end
            end
        | _ -> ())
      decisions;
    List.rev !acc
  in
  List.iter
    (fun (key, pi) -> Hashtbl.add replan key pi)
    (pool_map
       (fun (i, grant) ->
         let c = compiled.(i) in
         let p =
           maybe_fuse
             (F.plan_partitioned ~options:options.fw_options
                ~capacity_bytes:grant c.config specs.(i).graph)
         in
         ((specs.(i).model, grant), (p, isolated p)))
       replan_keys);
  let partitioned i grant =
    let c = compiled.(i) in
    if grant >= c.base.F.tensor_sram_bytes then (c.base, c.base_iso)
    else
      let key = (specs.(i).model, grant) in
      match Hashtbl.find_opt replan key with
      | Some pi -> pi
      | None ->
          let p =
            maybe_fuse
              (F.plan_partitioned ~options:options.fw_options
                 ~capacity_bytes:grant c.config specs.(i).graph)
          in
          let pi = (p, isolated p) in
          Hashtbl.add replan key pi;
          pi
  in
  let admitted = ref [] in
  Array.iteri
    (fun i d ->
      match d with
      | Admission.Admitted { grant_bytes } ->
          let plan, iso = partitioned i grant_bytes in
          admitted := (i, grant_bytes, plan, iso) :: !admitted
      | _ -> ())
    decisions;
  let admitted = Array.of_list (List.rev !admitted) in
  let channels = max 1 options.channels in
  let channel_assign_us = ref 0. in
  let schedule_us = ref 0. in
  let timed cell f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    cell := !cell +. ((Unix.gettimeofday () -. t0) *. 1e6);
    r
  in
  (* Static channel map per admitted tenant: the plan's own assignment
     when the planner already ran the pass at this width, else computed
     here.  [None] at one channel keeps the engine on the aggregate
     fluid-bus path bit for bit. *)
  let assign_of plans =
    if channels <= 1 then None
    else begin
      let assignments =
        timed channel_assign_us (fun () ->
            Array.map
              (fun (_, _, (plan : F.plan), _) ->
                match plan.F.channel_assignment with
                | Some a when a.Lcmm.Channels.channels = channels -> a
                | _ ->
                  Lcmm.Channels.assign ~channels plan.F.metric
                    ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip)
              plans)
      in
      Some
        (fun ~owner ~target kind ->
          let cls =
            match kind with
            | Engine.Prefetch_load | Engine.Demand_load ->
              Lcmm.Channels.Wt_load
            | Engine.Weight_stream_x -> Lcmm.Channels.Wt_stream
          in
          Lcmm.Channels.channel_for assignments.(owner) cls target)
    end
  in
  let inputs_of plans =
    Array.map
      (fun (i, grant, (plan : F.plan), iso) ->
        {
          Engine.label = specs.(i).name;
          metric = plan.F.metric;
          on_chip = plan.F.allocation.Lcmm.Dnnk.on_chip;
          prefetch = plan.F.prefetch;
          arrival = specs.(i).arrival;
          priority = specs.(i).priority;
          slack = slack_of plan iso;
          replan =
            (match injector with
            | None -> None
            | Some _ ->
              (* Degraded-mode callback: evict by reverse benefit-density
                 and re-solve the tenant at what survives of its grant. *)
              Some
                (fun ~lost_bytes ->
                  let surviving = max 0 (grant - lost_bytes) in
                  let d =
                    F.degrade ~surviving_bytes:surviving plan specs.(i).graph
                  in
                  let replanned = maybe_fuse d.F.replanned in
                  Some
                    {
                      Engine.deg_on_chip =
                        replanned.F.allocation.Lcmm.Dnnk.on_chip;
                      deg_prefetch = replanned.F.prefetch;
                      deg_pinned_bytes = used_bytes replanned;
                      deg_evicted_bytes = d.F.evicted_bytes;
                      deg_surviving_bytes = surviving;
                    }));
        })
      plans
  in
  let make_faults () = Option.map Fault.Injector.create fault_spec in
  let sim, admitted, schedule =
    match options.scheduler with
    | Scheduler.Greedy | Scheduler.Edf ->
      let assign = assign_of admitted in
      let sim =
        Engine.run ~arbitration:options.arbitration
          ~scheduler:options.scheduler ~channels ?assign ?faults:injector
          (inputs_of admitted)
      in
      (sim, admitted, None)
    | Scheduler.Optimized ->
      (* Plan/schedule co-iteration: search a schedule for the current
         plans, feed the observed per-tenant slowdowns back into the
         planner as stall scales (contention makes unhidden stalls more
         expensive, shifting the prune and the UMM safety net), replan,
         and search again — bounded rounds, keeping the best round. *)
      let search plans =
        timed schedule_us (fun () ->
            Optimizer.search ?pool
              ~hp_first:(options.arbitration = Arbiter.Priority)
              ~arbitration:options.arbitration ~channels
              ?assign:(assign_of plans) ~make_faults
              ~isos:(Array.map (fun (_, _, _, iso) -> iso) plans)
              (inputs_of plans))
      in
      let scales_of plans (outcome : Optimizer.outcome) =
        Array.mapi
          (fun k (_, _, _, iso) ->
            let iso_total = iso.Sim.Engine.total in
            let tr = outcome.Optimizer.result.Engine.tenants.(k) in
            if iso_total > 0. then
              Float.max 1. (tr.Engine.latency /. iso_total)
            else 1.)
          plans
      in
      (* Replan a tenant only when contention actually scaled its
         stalls; distinct (model, grant, scale) solves fan out once. *)
      let replan_scaled plans scales =
        let keyed =
          let seen = Hashtbl.create 8 in
          let acc = ref [] in
          Array.iteri
            (fun k (i, grant, _, _) ->
              if scales.(k) > 1. +. 1e-9 then begin
                let key = (specs.(i).model, grant, scales.(k)) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  acc := (key, (i, grant, scales.(k))) :: !acc
                end
              end)
            plans;
          List.rev !acc
        in
        let solved = Hashtbl.create 8 in
        List.iter
          (fun (key, pi) -> Hashtbl.add solved key pi)
          (pool_map
             (fun (key, (i, grant, scale)) ->
               let c = compiled.(i) in
               let p =
                 maybe_fuse
                   (F.plan_partitioned ~options:options.fw_options
                      ~stall_scale:scale ~capacity_bytes:grant c.config
                      specs.(i).graph)
               in
               (key, (p, isolated p)))
             keyed);
        Array.mapi
          (fun k (i, grant, plan, iso) ->
            if scales.(k) <= 1. +. 1e-9 then (i, grant, plan, iso)
            else
              let plan, iso =
                Hashtbl.find solved (specs.(i).model, grant, scales.(k))
              in
              (i, grant, plan, iso))
          plans
      in
      let rounds_bound = max 1 options.schedule_rounds in
      let best = ref None in
      let history = ref [] in
      let converged = ref false in
      let plans = ref admitted in
      let prev_scales = ref (Array.map (fun _ -> 1.) admitted) in
      let round = ref 0 in
      while !round < rounds_bound && not !converged do
        let outcome = search !plans in
        history := outcome.Optimizer.result.Engine.makespan :: !history;
        let improved =
          match !best with
          | None ->
            best := Some (outcome, !plans);
            true
          | Some ((bo : Optimizer.outcome), _) ->
            let bm = bo.Optimizer.result.Engine.makespan in
            let m = outcome.Optimizer.result.Engine.makespan in
            if
              m < bm
              || (m = bm && outcome.Optimizer.hp_slowdown < bo.Optimizer.hp_slowdown)
            then begin
              best := Some (outcome, !plans);
              true
            end
            else false
        in
        if !round > 0 && not improved then converged := true
        else begin
          let scales = scales_of !plans outcome in
          if
            Array.for_all2
              (fun s p -> Float.abs (s -. p) <= 1e-9)
              scales !prev_scales
          then converged := true
          else begin
            if !round + 1 < rounds_bound then
              plans := replan_scaled !plans scales;
            prev_scales := scales
          end
        end;
        incr round
      done;
      let outcome, final_plans =
        match !best with Some b -> b | None -> assert false
      in
      let schedule =
        Some
          {
            Report.sched_rounds = !round;
            sched_history_ms = List.rev_map (fun m -> m *. 1e3) !history;
            sched_converged = !converged;
            sched_chosen = outcome.Optimizer.chosen;
            sched_candidates =
              List.map
                (fun (l, m) -> (l, m *. 1e3))
                outcome.Optimizer.candidates;
          }
      in
      (outcome.Optimizer.result, final_plans, schedule)
  in
  if !schedule_us > 0. || !channel_assign_us > 0. then
    F.record_pass_times
      {
        F.zero_pass_times with
        F.schedule_us = !schedule_us;
        channel_assign_us = !channel_assign_us;
      };
  let run_of = Hashtbl.create 8 in
  Array.iteri
    (fun k (i, grant, plan, iso) ->
      Hashtbl.replace run_of i (grant, plan, iso, sim.Engine.tenants.(k)))
    admitted;
  let tenants =
    Array.to_list
      (Array.mapi
         (fun i s ->
           let demand_bytes = compiled.(i).demand.Admission.sram_bytes in
           match decisions.(i) with
           | Admission.Rejected { reason } ->
               {
                 Report.name = s.name;
                 model = s.model;
                 priority = s.priority;
                 status = Report.Rejected reason;
                 arrival_ms = s.arrival *. 1e3;
                 grant_bytes = 0;
                 demand_bytes;
                 sram_used_bytes = 0;
                 isolated_ms = 0.;
                 latency_ms = 0.;
                 finish_ms = 0.;
                 slowdown = 0.;
                 prefetch_wait_ms = 0.;
                 ddr_mb = 0.;
                 faults = Report.no_faults;
               }
           | Admission.Queued { reason } ->
               {
                 Report.name = s.name;
                 model = s.model;
                 priority = s.priority;
                 status = Report.Queued reason;
                 arrival_ms = s.arrival *. 1e3;
                 grant_bytes = 0;
                 demand_bytes;
                 sram_used_bytes = 0;
                 isolated_ms = 0.;
                 latency_ms = 0.;
                 finish_ms = 0.;
                 slowdown = 0.;
                 prefetch_wait_ms = 0.;
                 ddr_mb = 0.;
                 faults = Report.no_faults;
               }
           | Admission.Admitted { grant_bytes } ->
               let _, plan, iso, tr = Hashtbl.find run_of i in
               let iso_total = iso.Sim.Engine.total in
               let f = tr.Engine.faults in
               {
                 Report.name = s.name;
                 model = s.model;
                 priority = s.priority;
                 status =
                   (match f.Engine.aborted with
                   | Some reason -> Report.Aborted reason
                   | None -> Report.Admitted);
                 arrival_ms = s.arrival *. 1e3;
                 grant_bytes;
                 demand_bytes;
                 sram_used_bytes =
                   (match f.Engine.pinned_after with
                   | Some b -> b
                   | None -> used_bytes plan);
                 isolated_ms = iso_total *. 1e3;
                 latency_ms = tr.Engine.latency *. 1e3;
                 finish_ms = tr.Engine.finish *. 1e3;
                 slowdown =
                   (if iso_total > 0. then tr.Engine.latency /. iso_total
                    else 1.);
                 prefetch_wait_ms = tr.Engine.prefetch_wait *. 1e3;
                 ddr_mb = tr.Engine.ddr_bytes /. 1e6;
                 faults = f;
               })
         specs)
  in
  let bus_busy_fraction =
    if sim.Engine.makespan > 0. then
      List.fold_left
        (fun acc (seg : Engine.segment) ->
          acc
          +. ((seg.Engine.seg_end -. seg.Engine.seg_start)
             *. Float.min 1. seg.Engine.utilization))
        0. sim.Engine.timeline
      /. sim.Engine.makespan
    else 0.
  in
  {
    Report.device = options.device.Fpga.Device.device_name;
    dtype = Tensor.Dtype.to_string options.dtype;
    arbitration = options.arbitration;
    scheduler = options.scheduler;
    partition = options.partition;
    budget_bytes;
    board_bandwidth;
    overcommit = options.overcommit;
    makespan_ms = sim.Engine.makespan *. 1e3;
    bus_busy_fraction;
    tenants;
    timeline = sim.Engine.timeline;
    channels;
    channel_timelines = sim.Engine.channel_timelines;
    schedule;
    faults = fault_spec;
  }
